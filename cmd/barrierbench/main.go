// Command barrierbench reproduces the paper's Figure 5: barrier latencies
// and factors of improvement for NIC-based and host-based barriers, both
// algorithms (PE and GB), on simulated LANai 4.3 and LANai 7.2 clusters.
//
// Usage:
//
//	barrierbench [-fig 5a|5b|5c|5d|mpi|all] [-iters N] [-parallel W]
//	barrierbench -fig rel [-loss 0,0.5,1,2,5] [-faultplan none|flap|corrupt|chaos] [-nodes N] [-dim D]
//	barrierbench -fig flap [-nodes N] [-dim D] [-outage US]
//	barrierbench -fig crash [-faultplan crash|partition] [-nodes N] [-dim D]
//	barrierbench -fig topo [-topo single,star,clos3] [-sizes 16,...,1024] [-radix R]
//	barrierbench -fig topo -tuned [-sizes 1024,8192,16384] [-radix 32]
//	barrierbench -fig contend [-radix R] [-bytes B]
//	barrierbench -dumptopo FILE [-topo KIND] [-nodes N] [-radix R]
//	barrierbench -metrics [-nodes N] [-dim D] [-iters N]
//
// -metrics runs one observed NIC-PE and one NIC-GB measurement with the
// full-stack tracer attached and dumps the cluster's metrics registry
// (packet, retransmit, firmware and per-phase counters) plus the Section
// 2.2 decomposition of the timed window.
//
// GB rows report the minimum latency over all tree dimensions 1..N-1 and
// the dimension that achieved it, matching the paper's methodology. With
// -fig topo, -tuned swaps the exhaustive dimension sweep for the
// closed-form steady-state model (internal/model), which is what makes
// 8192- and 16384-node rows practical to measure.
// Independent measurements fan out over -parallel workers (default
// GOMAXPROCS); results are bit-identical at any worker count.
//
// The reliability figures go beyond the paper's zero-loss benchmarks: -fig
// rel sweeps packet loss over the reliable Section-4.4 barriers against
// the host baseline (optionally on top of a named base fault plan), and
// -fig flap measures recovery latency after a mid-barrier link outage.
//
// -fig crash goes further, into fail-stop faults: with failure detection
// enabled, a node is killed (-faultplan crash) or its cable permanently cut
// (-faultplan partition) mid-run, and the survivors repair the barrier
// around the corpse. The figure prints both scenario summaries (survivor
// sets, repair work, drain time) and the crash-detection latency table as
// a function of the firmware retry budget.
//
// The topology figures go beyond the paper's single 16-port crossbar:
// -fig topo sweeps the barriers over declarative multi-switch fabrics
// (internal/topo) up to the 1024 nodes a radix-16 fat-tree supports,
// -fig contend measures trunk contention on a star of switches, and
// -dumptopo writes any fabric as Graphviz DOT for inspection.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/fault"
	"gmsim/internal/mcp"
	"gmsim/internal/network"
	"gmsim/internal/runner"
	"gmsim/internal/service"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
	"gmsim/internal/topo"
)

// defaultTopoList is the classic -fig topo sweep when -topo is left unset
// (the shared spec flag defaults to just "single").
const defaultTopoList = "single,star,clos3"

func main() {
	fig := flag.String("fig", "all", "which figure to reproduce: 5a, 5b, 5c, 5d, mpi, mpibar, coll, scale, grain, rel, flap, crash, topo, contend, all")
	iters := flag.Int("iters", experiments.DefaultIters, "timed barrier iterations per point")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker pool size (results are identical at any value)")
	loss := flag.String("loss", "0,0.5,1,2,5", "comma-separated per-hop loss percentages for -fig rel")
	sf := service.BindSpecFlags(flag.CommandLine)
	outage := flag.Float64("outage", 200, "link outage duration in microseconds for -fig flap")
	sizesFlag := flag.String("sizes", "16,32,64,128,256,512,1024", "comma-separated node counts for -fig topo")
	tuned := flag.Bool("tuned", false, "for -fig topo: pick GB dims from the steady-state model instead of sweeping")
	bytesFlag := flag.Int("bytes", 4096, "message size for -fig contend streams")
	dumptopo := flag.String("dumptopo", "", "write the -topo/-nodes/-radix fabric as Graphviz DOT to this file ('-' for stdout) and exit")
	metrics := flag.Bool("metrics", false, "run observed -nodes measurements and dump the metrics registry, then exit")
	flag.Parse()
	runner.SetDefault(*parallel)

	topoList := sf.Topo
	topoSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == service.FlagTopo {
			topoSet = true
		}
	})
	if !topoSet && *fig == "topo" {
		topoList = defaultTopoList
	}
	kinds, err := service.ParseKinds(topoList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -topo: %v\n", err)
		os.Exit(2)
	}
	if *metrics {
		printMetrics(sf.Nodes, sf.Dim, *iters)
		return
	}
	if *dumptopo != "" {
		if err := writeDOT(*dumptopo, kinds[0], sf.Nodes, sf.Radix); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	switch *fig {
	case "5a":
		printLatencies("Figure 5(a): barrier latency (us), LANai 4.3", experiments.Figure5a(*iters))
	case "5b":
		printFactors("Figure 5(b): factor of improvement, LANai 4.3", experiments.Figure5b(*iters))
	case "5c":
		printLatencies("Figure 5(c): barrier latency (us), LANai 7.2", experiments.Figure5c(*iters))
	case "5d":
		printFactors("Figure 5(d): factor of improvement, LANai 7.2", experiments.Figure5d(*iters))
	case "mpi":
		printLayerSweep(*iters)
	case "coll":
		printCollectives(*iters)
	case "scale":
		printScale(*iters)
	case "grain":
		printGranularity(*iters)
	case "mpibar":
		printMPIBarrier(*iters)
	case "rel":
		pcts, err := parseLossList(*loss)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -loss: %v\n", err)
			os.Exit(2)
		}
		if service.FailStop(sf.FaultPlan) {
			fmt.Fprintf(os.Stderr, "-fig rel wants a non-fail-stop -faultplan (none, flap, corrupt, chaos); %q belongs to -fig crash\n", sf.FaultPlan)
			os.Exit(2)
		}
		base, err := service.NamedPlan(sf.FaultPlan, sf.Seed, sf.Nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		printReliability(sf.Nodes, pcts, sf.Dim, *iters, sf.FaultPlan, base)
	case "flap":
		printFlap(sf.Nodes, sf.Dim, sim.FromMicros(*outage), sf.Seed)
	case "crash":
		printCrash(sf.Nodes, sf.Dim, sf.FaultPlan, sf.Seed)
	case "topo":
		sizes, err := parseIntList(*sizesFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -sizes: %v\n", err)
			os.Exit(2)
		}
		printTopoScale(kinds, sizes, sf.Radix, *iters, sf.Partitions, *tuned)
	case "contend":
		printContention(sf.Radix, *bytesFlag, *iters)
	case "all":
		rows43 := experiments.Figure5a(*iters)
		rows72 := experiments.Figure5c(*iters)
		printLatencies("Figure 5(a): barrier latency (us), LANai 4.3", rows43)
		fmt.Println()
		printFactors("Figure 5(b): factor of improvement, LANai 4.3", experiments.Factors(rows43))
		fmt.Println()
		printLatencies("Figure 5(c): barrier latency (us), LANai 7.2", rows72)
		fmt.Println()
		printFactors("Figure 5(d): factor of improvement, LANai 7.2", experiments.Factors(rows72))
		fmt.Println()
		printHeadlines(rows43, rows72)
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func printLatencies(title string, rows []experiments.Figure5Row) {
	t := stats.NewTable(title, "Nodes", "NIC-PE", "NIC-GB", "Host-PE", "Host-GB", "NIC-GB dim", "Host-GB dim")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.NICPE, r.NICGB, r.HostPE, r.HostGB, r.NICGBDim, r.HostGBDim)
	}
	fmt.Print(t.String())
}

func printFactors(title string, rows []experiments.FactorRow) {
	t := stats.NewTable(title, "Nodes", "PE", "GB")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.PE, r.GB)
	}
	fmt.Print(t.String())
}

func printLayerSweep(iters int) {
	pts := experiments.LayerOverheadSweep(8, []float64{0, 5, 10, 20, 40}, iters)
	t := stats.NewTable("Factor of improvement vs added layer overhead (8 nodes, LANai 4.3, PE)",
		"Overhead (us/msg)", "NIC-PE (us)", "Host-PE (us)", "Factor")
	for _, p := range pts {
		t.AddRow(p.OverheadMicros, p.NICPE, p.HostPE, p.Factor)
	}
	fmt.Print(t.String())
}

func printCollectives(iters int) {
	rows := experiments.CollectiveComparison(cluster.DefaultConfig, []int{2, 4, 8, 16}, 4, iters)
	t := stats.NewTable("NIC-based vs host-based collectives (Section 8 future work), LANai 4.3, 4x int64, optimal tree dim (us)",
		"Nodes", "NIC-bcast", "Host-bcast", "NIC-reduce", "Host-reduce",
		"NIC-allred", "Host-allred", "NIC-allgat", "Host-allgat",
		"Bcast factor", "Allred factor", "Allgat factor")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.NICBcast, r.HostBcast, r.NICReduce, r.HostReduce,
			r.NICAllRed, r.HostAllRed, r.NICAllGat, r.HostAllGat,
			r.FactorBcast, r.FactorAllRed, r.FactorAllGat)
	}
	fmt.Print(t.String())
}

func printScale(iters int) {
	rows := experiments.ScaleSweep([]int{2, 4, 8, 16, 32, 64, 128}, iters)
	t := stats.NewTable("PE barrier scalability projection, LANai 4.3 (two-level switches beyond 16 nodes)",
		"Nodes", "NIC-PE (us)", "Host-PE (us)", "Factor")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.NICPE, r.HostPE, r.Factor)
	}
	fmt.Print(t.String())
}

func printGranularity(iters int) {
	grains := []float64{10, 25, 50, 100, 250, 500, 1000}
	pts := experiments.GranularitySweep(16, grains, 0.2, iters)
	t := stats.NewTable("BSP granularity study, 16 nodes, LANai 4.3, 20% compute imbalance",
		"Grain (us)", "NIC iter (us)", "Host iter (us)", "NIC efficiency", "Host efficiency")
	for _, p := range pts {
		t.AddRow(p.GrainMicros, p.NICIter, p.HostIter, p.NICEff, p.HostEff)
	}
	fmt.Print(t.String())
	fmt.Printf("\nbreak-even grain (50%% efficiency): NIC %.0fus, host %.0fus\n",
		experiments.BreakEvenGrain(pts, true, 0.5),
		experiments.BreakEvenGrain(pts, false, 0.5))
}

func printMPIBarrier(iters int) {
	rows := experiments.MPIBarrierComparison([]int{2, 4, 8, 16}, iters)
	t := stats.NewTable("MPI_Barrier over the mpi layer: NIC-backed vs host-backed (LANai 4.3)",
		"Nodes", "NIC-backed (us)", "Host-backed (us)", "MPI factor", "Raw-GM factor")
	for _, r := range rows {
		t.AddRow(r.Nodes, r.NICBacked, r.HostBack, r.Factor, r.RawFactor)
	}
	fmt.Print(t.String())
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if v < 1 {
			return nil, fmt.Errorf("size %d out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// writeDOT builds the requested fabric and writes its Graphviz DOT form.
func writeDOT(path string, kind topo.Kind, nodes, radix int) error {
	spec := topo.Spec{Kind: kind, Nodes: nodes, Radix: radix, AllowExpand: kind == topo.Single}
	t, err := topo.Build(spec)
	if err != nil {
		return err
	}
	lp := network.DefaultLinkParams()
	label := fmt.Sprintf("%s: %d nodes, radix %d (%d switches, %d trunks)\nlink %.0f MB/s, switch route delay %v",
		kind, nodes, radix, t.Switches(), len(t.Trunks), lp.BandwidthMBps, network.DefaultSwitchParams(radix).RouteDelay)
	dot := t.DOT(label)
	if path == "-" {
		_, err = fmt.Print(dot)
		return err
	}
	return os.WriteFile(path, []byte(dot), 0o644)
}

func printTopoScale(kinds []topo.Kind, sizes []int, radix, iters, partitions int, tuned bool) {
	var rows []experiments.TopoScaleRow
	dimNote := "best dim"
	if tuned {
		rows = experiments.TopoScaleSweepAuto(kinds, sizes, radix, iters, partitions)
		dimNote = "model-tuned dim"
	} else {
		rows = experiments.TopoScaleSweepPartitioned(kinds, sizes, radix, iters, nil, partitions)
	}
	engine := ""
	if partitions > 1 {
		engine = fmt.Sprintf(", %d-partition engine where the fabric splits", partitions)
	}
	t := stats.NewTable(
		fmt.Sprintf("Barrier latency across switch topologies, LANai 4.3, radix-%d switches%s (us; GB topology-aware, %s)", radix, engine, dimNote),
		"Topology", "Nodes", "Switches", "Diam", "NIC-PE", "Host-PE", "NIC-GB", "Host-GB",
		"NIC dim", "Host dim", "PE factor", "GB factor")
	have := make(map[[2]int]bool, len(rows))
	for _, r := range rows {
		t.AddRow(r.Kind.String(), r.Nodes, r.Switches, r.Diameter,
			r.NICPE, r.HostPE, r.NICGB, r.HostGB,
			r.NICGBDim, r.HostGBDim, r.FactorPE, r.FactorGB)
		have[[2]int{int(r.Kind), r.Nodes}] = true
	}
	fmt.Print(t.String())
	for _, k := range kinds {
		for _, n := range sizes {
			if n >= 2 && !have[[2]int{int(k), n}] {
				spec := topo.Spec{Kind: k, Nodes: n, Radix: radix, AllowExpand: k == topo.Single}
				_, err := topo.Build(spec)
				fmt.Printf("skipped %s at %d nodes: %v\n", k, n, err)
			}
		}
	}
}

func printContention(radix, bytes, iters int) {
	rows := experiments.CrossSwitchContention(radix, []int{1, 2, 3, 4, 5, 6, 7}, bytes, iters)
	t := stats.NewTable(
		fmt.Sprintf("Cross-switch trunk contention on a star of radix-%d switches (%d-byte streams, us/message)", radix, bytes),
		"Pairs", "Intra-switch", "Cross-switch", "Slowdown")
	for _, r := range rows {
		t.AddRow(r.Pairs, r.IntraMicros, r.CrossMicros, r.Slowdown)
	}
	fmt.Print(t.String())
}

// parseLossList parses the -loss flag: comma-separated percentages.
func parseLossList(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, err
		}
		if v < 0 || v > 100 {
			return nil, fmt.Errorf("loss %v%% out of range", v)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty loss list")
	}
	return out, nil
}

func printReliability(nodes int, pcts []float64, dim, iters int, planName string, base *fault.Plan) {
	pts := experiments.ReliabilitySweep(nodes, pcts, dim, iters, base)
	title := fmt.Sprintf("Reliable barriers under packet loss: %d nodes, LANai 4.3, GB dim %d, base plan %q (us; retrans = frames re-sent per run)",
		nodes, dim, planName)
	t := stats.NewTable(title,
		"Loss %", "Rel NIC-PE", "Rel NIC-GB", "Host-PE", "Unrel NIC-PE",
		"PE retrans", "GB retrans", "Host retrans")
	for _, p := range pts {
		unrel := any("-")
		if p.LossPct == 0 && p.UnrelPE != 0 {
			unrel = p.UnrelPE
		}
		t.AddRow(p.LossPct, p.RelPE, p.RelGB, p.HostPE, unrel,
			p.RelPERetrans, p.RelGBRetrans, p.HostPERetrans)
	}
	fmt.Print(t.String())
}

func printFlap(nodes, dim int, outage sim.Time, seed int64) {
	r := experiments.FlapRecovery(nodes, dim, outage, seed)
	t := stats.NewTable(fmt.Sprintf("Recovery after a mid-barrier link flap: %d nodes, reliable GB dim %d", nodes, dim),
		"Metric", "Value")
	t.AddRow("outage (us)", r.OutageMicros)
	t.AddRow("baseline barrier (us)", r.BaselineMicros)
	t.AddRow("faulted barrier (us)", r.FaultedMicros)
	t.AddRow("recovery cost (us)", r.RecoveryMicros)
	t.AddRow("repair retransmissions", r.Retrans)
	fmt.Print(t.String())
}

// printCrash runs the crash-tolerance figure: a PE and a GB scenario on n
// nodes with failure detection enabled, against a fail-stop of node n/2 at
// t=700us — a NIC crash (-faultplan crash) or a persistent cable cut
// (-faultplan partition) — then the detection-latency sweep across firmware
// retry budgets. Survivors repair the barrier around the corpse and keep
// completing; the summaries show who died, who agreed, and what it cost.
func printCrash(n, dim int, planName string, seed int64) {
	victim := network.NodeID(n / 2)
	if planName == "none" || planName == "" {
		planName = service.PlanCrash
	}
	if !service.FailStop(planName) {
		fmt.Fprintf(os.Stderr, "-fig crash wants -faultplan crash or partition, not %q\n", planName)
		os.Exit(2)
	}
	mk := func(alg mcp.BarrierAlg, d int, name string) experiments.Scenario {
		cfg := cluster.DefaultConfig(n)
		cfg.ReliableBarrier = true
		cfg.DetectFailures = true
		cfg.Firmware = experiments.DetectionFirmware()
		// A fresh plan per scenario: injector state is per-run.
		cfg.Fault, _ = service.NamedPlan(planName, seed, n)
		return experiments.Scenario{Name: name, Cfg: cfg, Alg: alg, Dim: d}
	}
	sums := experiments.RunScenarios([]experiments.Scenario{
		mk(mcp.PE, 0, fmt.Sprintf("pe%d-%s%d", n, planName, victim)),
		mk(mcp.GB, dim, fmt.Sprintf("gb%d-%s%d", n, planName, victim)),
	})
	fmt.Printf("Crash tolerance: %d nodes, LANai 4.3, %s of node %d at t=700us\n\n", n, planName, victim)
	for _, s := range sums {
		fmt.Print(s.String())
	}
	fmt.Println()
	pts := experiments.DetectionLatencySweep(n, dim, []int{4, 6, 8}, []float64{100, 200, 400})
	t := stats.NewTable(
		fmt.Sprintf("Crash-detection latency vs retry budget (%d nodes, GB dim %d, node %d crashed mid-run)", n, dim, victim),
		"MaxRetries", "RTO (us)", "Detect (us)", "Probes", "Declared")
	for _, p := range pts {
		t.AddRow(p.MaxRetries, p.RTOMicros, p.DetectMicros, p.Probes, p.Declared)
	}
	fmt.Print(t.String())
}

func printHeadlines(rows43, rows72 []experiments.Figure5Row) {
	paper := experiments.Paper()
	find := func(rows []experiments.Figure5Row, n int) experiments.Figure5Row {
		for _, r := range rows {
			if r.Nodes == n {
				return r
			}
		}
		return experiments.Figure5Row{}
	}
	r16 := find(rows43, 16)
	r8a := find(rows43, 8)
	r8b := find(rows72, 8)
	t := stats.NewTable("Headline comparison (paper vs simulation)", "Metric", "Paper", "Simulated")
	t.AddRow("16-node NIC-PE latency, LANai 4.3 (us)", paper.NICPE16L43, r16.NICPE)
	t.AddRow("16-node PE factor, LANai 4.3", paper.FactorPE16, r16.HostPE/r16.NICPE)
	t.AddRow("16-node NIC-GB latency, LANai 4.3 (us)", paper.NICGB16L43, r16.NICGB)
	t.AddRow("16-node GB factor, LANai 4.3", paper.FactorGB16, r16.HostGB/r16.NICGB)
	t.AddRow("8-node NIC-PE latency, LANai 7.2 (us)", paper.NICPE8L72, r8b.NICPE)
	t.AddRow("8-node host-PE latency, LANai 7.2 (us)", paper.HostPE8L72, r8b.HostPE)
	t.AddRow("8-node PE factor, LANai 7.2", paper.FactorPE8L72, r8b.HostPE/r8b.NICPE)
	t.AddRow("8-node PE factor, LANai 4.3", paper.FactorPE8L43, r8a.HostPE/r8a.NICPE)
	fmt.Print(t.String())
}

// printMetrics runs one observed NIC-PE and one NIC-GB measurement and
// dumps the cluster metrics registry alongside the phase decomposition —
// the always-on counters every experiment accumulates, surfaced.
func printMetrics(n, dim, iters int) {
	specs := []experiments.Spec{
		{Cluster: cluster.DefaultConfig(n), Level: experiments.NICLevel, Alg: mcp.PE, Iters: iters},
		{Cluster: cluster.DefaultConfig(n), Level: experiments.NICLevel, Alg: mcp.GB, Dim: dim, Iters: iters},
	}
	for i, sp := range specs {
		if i > 0 {
			fmt.Println()
		}
		obs := experiments.MeasureBarrierObserved(sp)
		name := fmt.Sprintf("%s-%s", sp.Level, sp.Alg)
		if sp.Alg == mcp.GB {
			name += fmt.Sprintf(" dim %d", sp.Dim)
		}
		fmt.Printf("%s, %d nodes, %d iterations: mean %.2fus\n", name, n, iters, obs.MeanMicros)
		fmt.Print(obs.Decomp.Table())
		fmt.Println("metrics:")
		fmt.Print(obs.Metrics.Dump(true))
	}
}
