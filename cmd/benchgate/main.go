// Command benchgate compares two BENCH_sim.json reports (as written by
// cmd/simbench) and fails when the head report regresses a gated metric by
// more than a threshold. CI runs it with the base branch's report against
// the PR head's to keep the engine's perf trajectory monotone.
//
// Gated metrics are all "lower is better" nanosecond costs:
// engine.ns_per_event, engine.ns_per_schedule_pop_depth256,
// engine.ns_per_cancel_depth256, and algroute.ns_per_route_alg. The head
// report must additionally hold algroute.speedup — algebraic route
// construction vs per-source BFS on the 8192-node fat-tree — above an
// absolute floor of 50x, enforcing the O(1)-per-route claim regardless of
// baseline. Wall-clock figure timings are reported but not gated — they
// depend on machine load and core count far more than on the code.
//
// Usage:
//
//	benchgate -base old.json -head new.json [-threshold 0.10]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// metrics holds only the gated subset of the simbench report; unknown
// fields in the JSON are ignored so the gate tolerates schema growth.
type metrics struct {
	Engine struct {
		NsPerEvent       float64 `json:"ns_per_event"`
		NsPerSchedulePop float64 `json:"ns_per_schedule_pop_depth256"`
		NsPerCancel      float64 `json:"ns_per_cancel_depth256"`
	} `json:"engine"`
	AlgRoute struct {
		NsPerRouteAlg float64 `json:"ns_per_route_alg"`
		Speedup       float64 `json:"speedup"`
	} `json:"algroute"`
}

// minAlgSpeedup is the absolute floor on algroute.speedup in the head
// report: the 8192-node barrier route set must build at least this many
// times faster algebraically than by per-source BFS.
const minAlgSpeedup = 50.0

func load(path string) (metrics, error) {
	var m metrics
	data, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func main() {
	basePath := flag.String("base", "", "baseline BENCH_sim.json (required)")
	headPath := flag.String("head", "", "candidate BENCH_sim.json (required)")
	threshold := flag.Float64("threshold", 0.10, "max allowed fractional regression (0.10 = 10%)")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	head, err := load(*headPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	type gate struct {
		name       string
		base, head float64
	}
	gates := []gate{
		{"engine.ns_per_event", base.Engine.NsPerEvent, head.Engine.NsPerEvent},
		{"engine.ns_per_schedule_pop_depth256", base.Engine.NsPerSchedulePop, head.Engine.NsPerSchedulePop},
		{"engine.ns_per_cancel_depth256", base.Engine.NsPerCancel, head.Engine.NsPerCancel},
		{"algroute.ns_per_route_alg", base.AlgRoute.NsPerRouteAlg, head.AlgRoute.NsPerRouteAlg},
	}
	failed := false
	for _, g := range gates {
		switch {
		case g.base <= 0 && g.head <= 0:
			fmt.Printf("SKIP %-38s absent in both reports\n", g.name)
		case g.base <= 0:
			fmt.Printf("NEW  %-38s head %.1f ns (no baseline)\n", g.name, g.head)
		case g.head <= 0:
			fmt.Printf("FAIL %-38s present in base (%.1f ns) but missing from head\n", g.name, g.base)
			failed = true
		default:
			delta := (g.head - g.base) / g.base
			verdict := "ok  "
			if delta > *threshold {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-38s base %8.1f ns  head %8.1f ns  %+.1f%%\n",
				verdict, g.name, g.base, g.head, 100*delta)
		}
	}
	// Absolute gate, independent of the baseline: once the head report
	// carries an algroute section, its speedup must clear the floor.
	switch {
	case head.AlgRoute.Speedup <= 0 && base.AlgRoute.Speedup <= 0:
		fmt.Printf("SKIP %-38s absent in both reports\n", "algroute.speedup")
	case head.AlgRoute.Speedup <= 0:
		fmt.Printf("FAIL %-38s present in base (%.0fx) but missing from head\n",
			"algroute.speedup", base.AlgRoute.Speedup)
		failed = true
	case head.AlgRoute.Speedup < minAlgSpeedup:
		fmt.Printf("FAIL %-38s head %.1fx below the %.0fx floor\n",
			"algroute.speedup", head.AlgRoute.Speedup, minAlgSpeedup)
		failed = true
	default:
		fmt.Printf("ok   %-38s head %.0fx (floor %.0fx)\n",
			"algroute.speedup", head.AlgRoute.Speedup, minAlgSpeedup)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: regression beyond %.0f%% threshold\n", 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated metrics within %.0f%% of baseline\n", 100**threshold)
}
