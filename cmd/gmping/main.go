// Command gmping validates the simulated GM substrate: point-to-point
// one-way latency and streaming bandwidth between two nodes, the numbers
// the paper's Section 1 quotes for host-based communication ("the one way
// latency of such a host-based message may be as high as 30µs").
//
// Usage:
//
//	gmping [-nic 4.3|7.2] [-iters N] [-sizes 8,64,256,1024,4096]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/experiments"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
)

func main() {
	nicModel := flag.String("nic", "4.3", "NIC model: 4.3 or 7.2")
	iters := flag.Int("iters", 200, "ping-pong iterations per size")
	sizesArg := flag.String("sizes", "8,64,256,1024,4096", "comma-separated message sizes")
	flag.Parse()

	mkCfg := cluster.DefaultConfig
	if *nicModel == "7.2" {
		mkCfg = cluster.LANai72Config
	} else if *nicModel != "4.3" {
		fmt.Fprintf(os.Stderr, "unknown NIC model %q\n", *nicModel)
		os.Exit(2)
	}

	var sizes []int
	for _, s := range strings.Split(*sizesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 0 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		sizes = append(sizes, v)
	}

	tbl := stats.NewTable(
		fmt.Sprintf("GM point-to-point, 2 nodes, LANai %s", *nicModel),
		"Size (B)", "One-way latency (us)", "Stream bandwidth (MB/s)")
	for _, size := range sizes {
		lat := experiments.PingPong(mkCfg(2), size, *iters)
		bw := streamBandwidth(mkCfg(2), size, *iters)
		tbl.AddRow(size, lat, bw)
	}
	fmt.Print(tbl.String())
}

// streamBandwidth measures one-directional streaming throughput: rank 0
// pushes iters messages of the given size; bandwidth = bytes / time from
// first send to last delivery.
func streamBandwidth(cfg cluster.Config, size, iters int) float64 {
	cl := cluster.New(cfg)
	g := core.UniformGroup(2, 2)
	payload := make([]byte, size)
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, iters+32)
		if err != nil {
			panic(err)
		}
		if rank == 0 {
			t0 = p.Now()
			sent := 0
			for sent < iters {
				// Respect the send-token limit by draining completions.
				if err := comm.Send(p, g[1], payload); err != nil {
					// Out of tokens: block until an event frees one.
					comm.Port().Receive(p)
					continue
				}
				sent++
			}
		} else {
			for i := 0; i < iters; i++ {
				if _, err := comm.RecvFrom(p, g[0]); err != nil {
					panic(err)
				}
			}
			t1 = p.Now()
		}
	})
	cl.Run()
	if t1 <= t0 {
		return 0
	}
	return float64(size*iters) / (t1 - t0).Micros() // B/µs == MB/s
}
