// Command simbench measures the harness's wall-clock performance and emits
// a machine-readable summary so the perf trajectory is tracked across PRs.
//
// It reports three things:
//
//   - engine: ns/event and events/sec of the DES core, measured on a real
//     16-node NIC-PE barrier simulation (every event the cluster executes,
//     divided by wall time, single-threaded);
//   - schedule/pop and cancel micro-costs of the event heap;
//   - figures: wall-clock of a representative figure workload (Figure 5a +
//     the scale sweep) run serially and on the full worker pool, and the
//     resulting speedup (reported as null when only one core is available,
//     where a "speedup" would just measure scheduling noise);
//   - partitioned: the conservative parallel engine on a 1024-node
//     fat-tree, serial vs -partitions P, with the window/post counts.
//
// Usage:
//
//	simbench [-json BENCH_sim.json] [-iters N] [-workers W] [-partitions P]
//	         [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/experiments"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/sim"
	"gmsim/internal/topo"
	"gmsim/internal/trace"
)

// Report is the schema of BENCH_sim.json.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Engine      struct {
		NsPerEvent       float64 `json:"ns_per_event"`
		EventsPerSec     float64 `json:"events_per_sec"`
		Events           int64   `json:"events"`
		NsPerSchedulePop float64 `json:"ns_per_schedule_pop_depth256"`
		NsPerCancel      float64 `json:"ns_per_cancel_depth256"`
		// Traced: the same workload with the full-stack trace recorder
		// attached (spans + fabric events). Simulated time is bit-identical
		// (the overhead-guard test pins that); this tracks the wall-clock
		// cost of recording.
		NsPerEventTraced float64 `json:"ns_per_event_traced"`
		TracedSpans      int     `json:"traced_spans"`
	} `json:"engine"`
	Figures struct {
		Workers   int     `json:"workers"`
		SerialSec float64 `json:"serial_sec"`
		// ParallelSec and Speedup are null when GOMAXPROCS == 1: with one
		// core the "parallel" run measures goroutine scheduling overhead,
		// not speedup, and recording a ~1.0 figure misleads readers into
		// thinking parallelism was exercised.
		ParallelSec *float64 `json:"parallel_sec"`
		Speedup     *float64 `json:"speedup"`
	} `json:"figures"`
	// Partitioned reports the conservative parallel engine (sim.Group) on
	// a 1024-node radix-16 fat-tree barrier run.
	Partitioned struct {
		Nodes      int     `json:"nodes"`
		Partitions int     `json:"partitions"`
		SerialSec  float64 `json:"serial_sec"`
		// PartitionedSec is measured on min(partitions, GOMAXPROCS)
		// workers; Speedup is null when GOMAXPROCS == 1 (the 1-worker
		// partitioned run then tracks pure synchronization overhead).
		PartitionedSec float64  `json:"partitioned_sec"`
		Workers        int      `json:"workers"`
		Speedup        *float64 `json:"speedup"`
		Windows        int64    `json:"windows"`
		CrossPosts     int64    `json:"cross_posts"`
	} `json:"partitioned"`
	Topo struct {
		Nodes        int     `json:"nodes"`
		Switches     int     `json:"switches"`
		Diameter     int     `json:"diameter"`
		BuildMs      float64 `json:"build_ms"`
		RouteTableMs float64 `json:"route_table_ms"`
		RoutesPerSec float64 `json:"routes_per_sec"`
	} `json:"topo"`
	// AlgRoute benchmarks algebraic source routing at 8192 nodes against
	// the BFS fallback, on the route set a tuned GB barrier actually
	// materializes (every parent<->child pair of the tree). BFS pays one
	// full per-source graph traversal for each of the n distinct sources
	// in that set; the algebraic path pays O(1) per route. The speedup is
	// the CI-enforced O(1) claim (cmd/benchgate holds it above 50x).
	AlgRoute struct {
		Nodes    int `json:"nodes"`
		Radix    int `json:"radix"`
		TunedDim int `json:"tuned_gb_dim"`
		// BuildMs is the wiring-plan construction time (no routes).
		BuildMs float64 `json:"build_ms"`
		// NsPerRouteAlg is the cold per-route cost of the algebraic path,
		// memoization included.
		NsPerRouteAlg float64 `json:"ns_per_route_alg"`
		// BFSRowMs is one per-source BFS pass over the same fabric
		// (mean over sampled sources).
		BFSRowMs float64 `json:"bfs_row_ms"`
		// RouteSetRoutes is the barrier's route count: 2(n-1) ordered
		// parent<->child pairs.
		RouteSetRoutes int     `json:"route_set_routes"`
		AlgSetMs       float64 `json:"alg_set_ms"`
		// BFSSetMsEst extrapolates the BFS cost of the same set: n
		// distinct sources x one row pass each.
		BFSSetMsEst float64 `json:"bfs_set_ms_est"`
		Speedup     float64 `json:"speedup"`
	} `json:"algroute"`
}

func main() {
	jsonPath := flag.String("json", "BENCH_sim.json", "output path ('' to skip writing)")
	iters := flag.Int("iters", 60, "timed barrier iterations per measurement")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "worker pool size for the parallel figures run")
	partitions := flag.Int("partitions", 8, "partition count for the parallel-engine measurement (<2 skips it)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the measurements to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		defer func() { pprof.StopCPUProfile(); f.Close() }()
	}
	if *memprofile != "" {
		path := *memprofile
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "simbench:", err)
			}
		}()
	}

	var r Report
	r.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	r.GoVersion = runtime.Version()
	r.GOMAXPROCS = runtime.GOMAXPROCS(0)

	// Engine throughput on a real workload: one 16-node NIC-PE barrier
	// simulation, all events counted, single-threaded.
	events, wall := barrierEngineRun(*iters, false)
	r.Engine.Events = events
	r.Engine.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	r.Engine.EventsPerSec = float64(events) / wall.Seconds()
	r.Engine.NsPerSchedulePop = schedulePopNs(256)
	r.Engine.NsPerCancel = cancelNs(256)

	// The same workload, fully traced.
	tracedEvents, tracedWall := barrierEngineRun(*iters, true)
	r.Engine.NsPerEventTraced = float64(tracedWall.Nanoseconds()) / float64(tracedEvents)
	r.Engine.TracedSpans = lastTracedSpans

	// Figure workload serial vs parallel. On a single-core host the
	// parallel run cannot speed anything up — record the cores and leave
	// the speedup null rather than reporting scheduler noise as ~1.0x.
	r.Figures.Workers = *workers
	figures := func() {
		experiments.Figure5a(*iters)
		experiments.ScaleSweep([]int{2, 4, 8, 16, 32}, *iters)
	}
	runner.SetDefault(1)
	t0 := time.Now()
	figures()
	r.Figures.SerialSec = time.Since(t0).Seconds()
	if r.GOMAXPROCS > 1 && *workers > 1 {
		runner.SetDefault(*workers)
		t0 = time.Now()
		figures()
		par := time.Since(t0).Seconds()
		sp := r.Figures.SerialSec / par
		r.Figures.ParallelSec, r.Figures.Speedup = &par, &sp
	}

	// The conservative parallel engine at scale.
	if *partitions > 1 {
		partitionedBench(&r, *partitions)
	}

	// Topology construction and routing cost: the 1024-node radix-16
	// fat-tree, built from scratch and fully routed (algebraically since
	// the algroute change; the metric tracks whatever Build wires in).
	topoBench(&r)

	// Algebraic routing vs the BFS fallback at 8192 nodes.
	algRouteBench(&r)

	fmt.Printf("engine: %.1f ns/event (%.0f events/sec over %d events)\n",
		r.Engine.NsPerEvent, r.Engine.EventsPerSec, r.Engine.Events)
	fmt.Printf("traced: %.1f ns/event with the full-stack recorder attached (%d spans, %+.1f%%)\n",
		r.Engine.NsPerEventTraced, r.Engine.TracedSpans,
		100*(r.Engine.NsPerEventTraced-r.Engine.NsPerEvent)/r.Engine.NsPerEvent)
	fmt.Printf("heap:   %.1f ns/schedule+pop, %.1f ns/cancel (depth 256)\n",
		r.Engine.NsPerSchedulePop, r.Engine.NsPerCancel)
	if r.Figures.Speedup != nil {
		fmt.Printf("figures: serial %.2fs, parallel %.2fs on %d workers (%.2fx)\n",
			r.Figures.SerialSec, *r.Figures.ParallelSec, r.Figures.Workers, *r.Figures.Speedup)
	} else {
		fmt.Printf("figures: serial %.2fs (GOMAXPROCS=%d; parallel speedup not measurable)\n",
			r.Figures.SerialSec, r.GOMAXPROCS)
	}
	if r.Partitioned.Partitions > 1 {
		if r.Partitioned.Speedup != nil {
			fmt.Printf("partitioned: %d nodes / %d partitions: serial %.2fs, partitioned %.2fs on %d workers (%.2fx, %d windows, %d cross posts)\n",
				r.Partitioned.Nodes, r.Partitioned.Partitions, r.Partitioned.SerialSec,
				r.Partitioned.PartitionedSec, r.Partitioned.Workers, *r.Partitioned.Speedup,
				r.Partitioned.Windows, r.Partitioned.CrossPosts)
		} else {
			fmt.Printf("partitioned: %d nodes / %d partitions: serial %.2fs, partitioned %.2fs on 1 worker (overhead only; %d windows, %d cross posts)\n",
				r.Partitioned.Nodes, r.Partitioned.Partitions, r.Partitioned.SerialSec,
				r.Partitioned.PartitionedSec, r.Partitioned.Windows, r.Partitioned.CrossPosts)
		}
	}
	fmt.Printf("topo:   %d-node clos3 (%d switches, diameter %d): build %.2fms, route table %.2fms (%.0f routes/sec)\n",
		r.Topo.Nodes, r.Topo.Switches, r.Topo.Diameter,
		r.Topo.BuildMs, r.Topo.RouteTableMs, r.Topo.RoutesPerSec)
	fmt.Printf("algroute: %d-node clos3 radix %d (GB dim %d): %.0f ns/route algebraic, BFS row %.2fms; barrier route set (%d routes) %.2fms vs %.0fms BFS — %.0fx\n",
		r.AlgRoute.Nodes, r.AlgRoute.Radix, r.AlgRoute.TunedDim,
		r.AlgRoute.NsPerRouteAlg, r.AlgRoute.BFSRowMs, r.AlgRoute.RouteSetRoutes,
		r.AlgRoute.AlgSetMs, r.AlgRoute.BFSSetMsEst, r.AlgRoute.Speedup)

	if *jsonPath != "" {
		out, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *jsonPath)
	}
}

// partitionedBench measures the conservative parallel engine: the same
// 1024-node fat-tree barrier run on the serial engine and split into
// partitions. Simulated results are bit-identical (the determinism guard
// in internal/experiments pins that); this records wall time and the
// synchronization cost (windows, cross-partition posts).
func partitionedBench(r *Report, partitions int) {
	const nodes, radix, iters = 1024, 16, 2
	run := func(parts, workers int) (time.Duration, *cluster.Cluster) {
		cfg := cluster.DefaultConfig(nodes)
		cfg.Topology = &topo.Spec{Kind: topo.Clos3, Radix: radix}
		cfg.Switch.Ports = radix
		cfg.ReliableBarrier = true
		cfg.Partitions = parts
		cl := cluster.New(cfg)
		g := core.UniformGroup(nodes, 2)
		leafOf := cl.Topology().LeafOf()
		cl.SpawnAll(func(p *host.Process) {
			rank := p.Rank()
			port, err := gm.Open(p, cl.MCP(rank), 2)
			if err != nil {
				panic(err)
			}
			comm, err := core.NewComm(p, port, 4*nodes+16)
			if err != nil {
				panic(err)
			}
			for i := 0; i < iters; i++ {
				if err := comm.BarrierMapped(p, mcp.PE, g, rank, 0, leafOf); err != nil {
					panic(err)
				}
			}
		})
		t0 := time.Now()
		cl.RunWorkers(workers)
		return time.Since(t0), cl
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > partitions {
		workers = partitions
	}
	serialWall, _ := run(1, 1)
	partWall, cl := run(partitions, workers)
	r.Partitioned.Nodes = nodes
	r.Partitioned.Partitions = partitions
	r.Partitioned.SerialSec = serialWall.Seconds()
	r.Partitioned.PartitionedSec = partWall.Seconds()
	r.Partitioned.Workers = workers
	r.Partitioned.Windows = cl.Group().Windows()
	r.Partitioned.CrossPosts = cl.Group().Posts()
	if runtime.GOMAXPROCS(0) > 1 {
		sp := serialWall.Seconds() / partWall.Seconds()
		r.Partitioned.Speedup = &sp
	}
}

// topoBench times building and fully routing the largest supported fabric:
// the 1024-node three-level Clos of radix-16 switches. Every barrier
// simulation at that scale pays the build once and the route rows lazily;
// this tracks both costs across PRs.
func topoBench(r *Report) {
	const n = 1024
	spec := topo.Spec{Kind: topo.Clos3, Nodes: n, Radix: 16}
	t0 := time.Now()
	t := topo.MustBuild(spec)
	r.Topo.BuildMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	t0 = time.Now()
	tbl, err := t.RouteTable()
	if err != nil {
		panic(err)
	}
	routeWall := time.Since(t0)
	r.Topo.RouteTableMs = float64(routeWall.Nanoseconds()) / 1e6
	r.Topo.RoutesPerSec = float64(len(tbl)*len(tbl)) / routeWall.Seconds()
	st, err := t.ComputeStats()
	if err != nil {
		panic(err)
	}
	r.Topo.Nodes = n
	r.Topo.Switches = st.Switches
	r.Topo.Diameter = st.Diameter
}

// algRouteBench measures the tentpole claim: building the route set of a
// tuned GB barrier on the 8192-node radix-32 fat-tree, algebraically vs
// by per-source BFS. The algebraic side is timed cold (fresh Topology,
// empty memo); the BFS side is one RoutesFrom per sampled source on the
// same graph, extrapolated to the n distinct sources the set contains.
func algRouteBench(r *Report) {
	const n, radix = 8192, 32
	t0 := time.Now()
	tp := topo.MustBuild(topo.Spec{Kind: topo.Clos3, Nodes: n, Radix: radix})
	r.AlgRoute.BuildMs = float64(time.Since(t0).Nanoseconds()) / 1e6
	dim := experiments.TunedGBDim(cluster.DefaultConfig(n))

	// The barrier's route set: gather (child -> parent) and broadcast
	// (parent -> child) for every tree edge.
	type pair struct{ src, dst int }
	pairs := make([]pair, 0, 2*(n-1))
	for i := 1; i < n; i++ {
		p := (i - 1) / dim
		pairs = append(pairs, pair{i, p}, pair{p, i})
	}
	t0 = time.Now()
	for _, pr := range pairs {
		if _, err := tp.Route(pr.src, pr.dst); err != nil {
			panic(err)
		}
	}
	algWall := time.Since(t0)

	// One BFS row per sampled source (graph pre-built so the first row
	// doesn't absorb graph construction).
	g := tp.Graph()
	const rows = 8
	t0 = time.Now()
	for i := 0; i < rows; i++ {
		if _, err := g.RoutesFrom(topo.NICVertex(i * (n / rows))); err != nil {
			panic(err)
		}
	}
	bfsRow := time.Since(t0).Seconds() * 1000 / rows

	r.AlgRoute.Nodes = n
	r.AlgRoute.Radix = radix
	r.AlgRoute.TunedDim = dim
	r.AlgRoute.NsPerRouteAlg = float64(algWall.Nanoseconds()) / float64(len(pairs))
	r.AlgRoute.BFSRowMs = bfsRow
	r.AlgRoute.RouteSetRoutes = len(pairs)
	r.AlgRoute.AlgSetMs = float64(algWall.Nanoseconds()) / 1e6
	r.AlgRoute.BFSSetMsEst = bfsRow * float64(n)
	r.AlgRoute.Speedup = r.AlgRoute.BFSSetMsEst / r.AlgRoute.AlgSetMs
}

// lastTracedSpans records the span count of the most recent traced
// barrierEngineRun, for the report.
var lastTracedSpans int

// barrierEngineRun runs a 16-node NIC-PE barrier workload and returns the
// number of simulator events executed and the wall time spent executing
// them. This is the same cluster construction MeasureBarrier uses, inlined
// so the simulator's event counter is reachable. With traced set, the
// full-stack recorder is attached for the whole run — same simulated
// schedule, extra bookkeeping per event.
func barrierEngineRun(iters int, traced bool) (int64, time.Duration) {
	const n = 16
	cl := cluster.New(cluster.DefaultConfig(n))
	var rec *trace.Recorder
	if traced {
		rec = trace.Attach(cl)
	}
	g := core.UniformGroup(n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*n+16)
		if err != nil {
			panic(err)
		}
		for i := 0; i < iters+5; i++ {
			if err := comm.Barrier(p, mcp.PE, g, rank, 0); err != nil {
				panic(err)
			}
		}
	})
	t0 := time.Now()
	cl.Run()
	wall := time.Since(t0)
	if traced {
		lastTracedSpans = rec.Phases().Len()
	}
	return cl.Sim().Executed(), wall
}

// schedulePopNs measures one schedule+pop pair at a steady heap depth.
func schedulePopNs(depth int) float64 {
	const ops = 2_000_000
	s := sim.New()
	rng := rand.New(rand.NewSource(1))
	remaining := ops
	var fn func()
	fn = func() {
		if remaining <= 0 {
			return
		}
		remaining--
		s.After(sim.Time(rng.Intn(1000)+1), fn)
	}
	for i := 0; i < depth; i++ {
		s.After(sim.Time(rng.Intn(1000)+1), fn)
	}
	t0 := time.Now()
	s.Run()
	return float64(time.Since(t0).Nanoseconds()) / float64(ops+depth)
}

// cancelNs measures one Cancel against a heap of the given depth.
func cancelNs(depth int) float64 {
	const batches = 5000
	s := sim.New()
	rng := rand.New(rand.NewSource(2))
	ids := make([]sim.EventID, 0, depth)
	var total time.Duration
	for b := 0; b < batches; b++ {
		ids = ids[:0]
		for j := 0; j < depth; j++ {
			ids = append(ids, s.After(sim.Time(rng.Intn(1000)+1), func() {}))
		}
		rng.Shuffle(len(ids), func(x, y int) { ids[x], ids[y] = ids[y], ids[x] })
		t0 := time.Now()
		for _, id := range ids {
			s.Cancel(id)
		}
		total += time.Since(t0)
	}
	return float64(total.Nanoseconds()) / float64(batches*depth)
}
