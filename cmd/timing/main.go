// Command timing reproduces Figure 2 and the Section 2.2 analytical model:
// it prints proportional timing diagrams for the host-based and NIC-based
// barriers, evaluates Equations 1-3, and compares the model's predictions
// with the discrete-event simulation.
//
// Usage:
//
//	timing [-n nodes] [-nic 4.3|7.2] [-width cols]
package main

import (
	"flag"
	"fmt"
	"os"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/mcp"
	"gmsim/internal/model"
	"gmsim/internal/stats"
)

func main() {
	n := flag.Int("n", 8, "barrier size (power of two)")
	nicModel := flag.String("nic", "4.3", "NIC model: 4.3 or 7.2")
	width := flag.Int("width", 72, "diagram width in columns")
	flag.Parse()

	var b model.Breakdown
	var mkCfg func(int) cluster.Config
	switch *nicModel {
	case "4.3":
		b = model.PaperEstimate43()
		mkCfg = cluster.DefaultConfig
	case "7.2":
		b = model.PaperEstimate72()
		mkCfg = cluster.LANai72Config
	default:
		fmt.Fprintf(os.Stderr, "unknown NIC model %q\n", *nicModel)
		os.Exit(2)
	}

	fmt.Printf("Figure 2(a): host-based barrier timing, one node, %d processes, LANai %s\n\n", *n, *nicModel)
	segs, err := b.TimingDiagram("host", *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(model.RenderDiagram(segs, *width))

	fmt.Printf("\nFigure 2(b): NIC-based barrier timing, one node, %d processes, LANai %s\n\n", *n, *nicModel)
	segs, err = b.TimingDiagram("nic", *n)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(model.RenderDiagram(segs, *width))

	fmt.Println("\nSection 2.2 model (Equations 1-3) vs discrete-event simulation:")
	tbl := stats.NewTable("", "Nodes", "Eq1 host (us)", "sim host (us)", "Eq2 NIC (us)", "sim NIC (us)", "Eq3 factor", "sim factor")
	for _, size := range []int{2, 4, 8, 16} {
		cfg := mkCfg(size)
		simNIC := experiments.MeasureBarrier(experiments.Spec{
			Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE, Iters: 100,
		}).MeanMicros
		simHost := experiments.MeasureBarrier(experiments.Spec{
			Cluster: cfg, Level: experiments.HostLevel, Alg: mcp.PE, Iters: 100,
		}).MeanMicros
		tbl.AddRow(size, b.HostBarrier(size), simHost, b.NICBarrier(size), simNIC,
			b.Factor(size), simHost/simNIC)
	}
	fmt.Print(tbl.String())
}
