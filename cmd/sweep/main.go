// Command sweep exposes the paper's GB tree-dimension methodology
// (Section 6): for each barrier size it prints the latency at every tree
// dimension from 1 to N-1 and marks the optimum. The Figure 5 GB numbers
// are the minima of these sweeps.
//
// Usage:
//
//	sweep [-nic 4.3|7.2] [-level nic|host] [-sizes 4,8,16] [-iters N] [-parallel W]
//	sweep -topo star|clos2|clos3 [-radix R] [-sizes 32,64] ...
//	sweep -faultplan corrupt [-seed S]        # reliable barrier under faults
//	sweep -nodes 16 -dim 4                    # one size, one dimension
//	sweep -tuned -topo clos3 -radix 32 -nodes 8192   # model-tuned dim only
//
// The spec flags (-topo, -radix, -nodes, -dim, -faultplan, -seed,
// -partitions) are the shared vocabulary of internal/service: the same
// names and defaults as cmd/barrierbench and the simd HTTP spec. With a
// non-single -topo the cluster is wired as the named multi-switch fabric
// (internal/topo) from radix-R switches and the GB tree is mapped onto it
// (intra-switch subtrees, one trunk crossing per leaf switch). An explicit
// -nodes overrides -sizes; an explicit -dim restricts the sweep to that
// dimension. -partitions > 1 runs the conservative parallel engine
// (multi-switch fabrics only; results are bit-identical to serial).
//
// -tuned replaces the exhaustive dimension sweep with the closed-form
// steady-state model (internal/model): it measures only the model's argmin
// dimension, which makes sweeping sizes like 8192 practical.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/mcp"
	"gmsim/internal/runner"
	"gmsim/internal/service"
	"gmsim/internal/stats"
	"gmsim/internal/topo"
)

func main() {
	nicModel := flag.String("nic", "4.3", "NIC model: 4.3 or 7.2")
	levelArg := flag.String("level", "nic", "barrier placement: nic or host")
	sizesArg := flag.String("sizes", "4,8,16", "comma-separated node counts")
	iters := flag.Int("iters", 100, "timed iterations per point")
	tuned := flag.Bool("tuned", false, "measure only the model-tuned GB dimension instead of sweeping")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker pool size (results are identical at any value)")
	sf := service.BindSpecFlags(flag.CommandLine)
	flag.Parse()
	runner.SetDefault(*parallel)

	kind, err := sf.FirstKind()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if service.FailStop(sf.FaultPlan) {
		fmt.Fprintf(os.Stderr, "-faultplan %s is fail-stop; dimension sweeps need completing clusters (use barrierbench -fig crash)\n", sf.FaultPlan)
		os.Exit(2)
	}

	mkCfg := cluster.DefaultConfig
	if *nicModel == "7.2" {
		mkCfg = cluster.LANai72Config
	} else if *nicModel != "4.3" {
		fmt.Fprintf(os.Stderr, "unknown NIC model %q\n", *nicModel)
		os.Exit(2)
	}
	topoAware := kind != topo.Single
	level := experiments.NICLevel
	if *levelArg == "host" {
		level = experiments.HostLevel
	} else if *levelArg != "nic" {
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *levelArg)
		os.Exit(2)
	}

	// An explicit -nodes wins over the -sizes list; an explicit -dim
	// restricts each sweep to that single dimension.
	nodesSet, dimSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case service.FlagNodes:
			nodesSet = true
		case service.FlagDim:
			dimSet = true
		}
	})
	sizes := strings.Split(*sizesArg, ",")
	if nodesSet {
		sizes = []string{strconv.Itoa(sf.Nodes)}
	}

	for _, s := range sizes {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		cfg := mkCfg(n)
		if topoAware {
			tc := experiments.TopoConfig(kind, n, sf.Radix)
			cfg.Switch = tc.Switch
			cfg.Topology = tc.Topology
		}
		if plan, err := service.NamedPlan(sf.FaultPlan, sf.Seed, n); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		} else if plan != nil {
			cfg.Fault = plan
			cfg.ReliableBarrier = true
		}
		if sf.Partitions > 1 {
			cfg.Partitions = sf.Partitions
		}
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *tuned {
			if dimSet {
				fmt.Fprintln(os.Stderr, "-tuned and -dim are mutually exclusive")
				os.Exit(2)
			}
			d := experiments.TunedGBDim(cfg)
			res := experiments.MeasureBarriers([]experiments.Spec{{
				Cluster: cfg, Level: level, Alg: mcp.GB, Dim: d,
				TopoAware: topoAware, Iters: *iters,
			}})
			tbl := stats.NewTable(
				fmt.Sprintf("%s-based GB barrier, %d nodes, LANai %s: model-tuned dimension",
					level, n, *nicModel),
				"Dim", "Latency (us)", "")
			tbl.AddRow(d, res[0].MeanMicros, "<- model-tuned (no sweep)")
			fmt.Print(tbl.String())
			fmt.Println()
			continue
		}
		pts := experiments.GBDimSweepOn(cfg, level, *iters, topoAware)
		if dimSet {
			kept := pts[:0]
			for _, p := range pts {
				if p.Dim == sf.Dim {
					kept = append(kept, p)
				}
			}
			if len(kept) == 0 {
				fmt.Fprintf(os.Stderr, "-dim %d out of range [1,%d] at %d nodes\n", sf.Dim, n-1, n)
				os.Exit(2)
			}
			pts = kept
		}
		best := pts[0]
		for _, p := range pts {
			if p.Micros < best.Micros {
				best = p
			}
		}
		fabric := ""
		if topoAware {
			fabric = fmt.Sprintf(", %s radix %d, mapped tree", kind, sf.Radix)
		}
		if sf.FaultPlan != service.PlanNone {
			fabric += fmt.Sprintf(", reliable, %s plan", sf.FaultPlan)
		}
		if sf.Partitions > 1 {
			fabric += fmt.Sprintf(", %d-partition engine", sf.Partitions)
		}
		tbl := stats.NewTable(
			fmt.Sprintf("%s-based GB barrier, %d nodes, LANai %s%s: latency vs tree dimension",
				level, n, *nicModel, fabric),
			"Dim", "Latency (us)", "")
		for _, p := range pts {
			mark := ""
			if p.Dim == best.Dim && len(pts) > 1 {
				mark = "<- optimal (reported in Figure 5)"
			}
			tbl.AddRow(p.Dim, p.Micros, mark)
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}
