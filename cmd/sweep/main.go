// Command sweep exposes the paper's GB tree-dimension methodology
// (Section 6): for each barrier size it prints the latency at every tree
// dimension from 1 to N-1 and marks the optimum. The Figure 5 GB numbers
// are the minima of these sweeps.
//
// Usage:
//
//	sweep [-nic 4.3|7.2] [-level nic|host] [-sizes 4,8,16] [-iters N] [-parallel W]
//	sweep -topo star|clos2|clos3 [-radix R] [-sizes 32,64] ...
//
// With -topo the cluster is wired as the named multi-switch fabric
// (internal/topo) from radix-R switches and the GB tree is mapped onto it
// (intra-switch subtrees, one trunk crossing per leaf switch).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/runner"
	"gmsim/internal/stats"
	"gmsim/internal/topo"
)

func main() {
	nicModel := flag.String("nic", "4.3", "NIC model: 4.3 or 7.2")
	levelArg := flag.String("level", "nic", "barrier placement: nic or host")
	sizesArg := flag.String("sizes", "4,8,16", "comma-separated node counts")
	iters := flag.Int("iters", 100, "timed iterations per point")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "simulation worker pool size (results are identical at any value)")
	topoArg := flag.String("topo", "", "wire the cluster as this topology kind (single, twoswitch, star, clos2, clos3) and map the GB tree onto it")
	radix := flag.Int("radix", topo.DefaultRadix, "switch port count for -topo fabrics")
	flag.Parse()
	runner.SetDefault(*parallel)

	mkCfg := cluster.DefaultConfig
	if *nicModel == "7.2" {
		mkCfg = cluster.LANai72Config
	} else if *nicModel != "4.3" {
		fmt.Fprintf(os.Stderr, "unknown NIC model %q\n", *nicModel)
		os.Exit(2)
	}
	topoAware := false
	if *topoArg != "" {
		kind, err := topo.ParseKind(*topoArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		base := mkCfg
		mkCfg = func(n int) cluster.Config {
			cfg := base(n)
			tc := experiments.TopoConfig(kind, n, *radix)
			cfg.Switch = tc.Switch
			cfg.Topology = tc.Topology
			return cfg
		}
		topoAware = true
	}
	level := experiments.NICLevel
	if *levelArg == "host" {
		level = experiments.HostLevel
	} else if *levelArg != "nic" {
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *levelArg)
		os.Exit(2)
	}

	for _, s := range strings.Split(*sizesArg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "bad size %q\n", s)
			os.Exit(2)
		}
		cfg := mkCfg(n)
		if err := cfg.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		pts := experiments.GBDimSweepOn(cfg, level, *iters, topoAware)
		best := pts[0]
		for _, p := range pts {
			if p.Micros < best.Micros {
				best = p
			}
		}
		fabric := ""
		if *topoArg != "" {
			fabric = fmt.Sprintf(", %s radix %d, mapped tree", *topoArg, *radix)
		}
		tbl := stats.NewTable(
			fmt.Sprintf("%s-based GB barrier, %d nodes, LANai %s%s: latency vs tree dimension",
				level, n, *nicModel, fabric),
			"Dim", "Latency (us)", "")
		for _, p := range pts {
			mark := ""
			if p.Dim == best.Dim {
				mark = "<- optimal (reported in Figure 5)"
			}
			tbl.AddRow(p.Dim, p.Micros, mark)
		}
		fmt.Print(tbl.String())
		fmt.Println()
	}
}
