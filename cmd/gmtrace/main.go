// Command gmtrace records and prints a packet-level trace of barrier
// traffic: every injection and delivery on the fabric during a window of
// consecutive barriers, plus per-packet wire latencies and event counts.
// Useful for seeing exactly what the firmware puts on the wire — the
// simulation counterpart of a Myrinet line analyzer.
//
// Usage:
//
//	gmtrace [-n nodes] [-alg pe|gb] [-dim D] [-level nic|host] [-barriers N] [-skip W]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/stats"
	"gmsim/internal/trace"
)

func main() {
	n := flag.Int("n", 4, "cluster size")
	algArg := flag.String("alg", "pe", "barrier algorithm: pe or gb")
	dim := flag.Int("dim", 2, "GB tree dimension")
	levelArg := flag.String("level", "nic", "barrier placement: nic or host")
	barriers := flag.Int("barriers", 2, "barriers to trace")
	skip := flag.Int("skip", 3, "warmup barriers before tracing")
	flag.Parse()

	alg := mcp.PE
	if *algArg == "gb" {
		alg = mcp.GB
	} else if *algArg != "pe" {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algArg)
		os.Exit(2)
	}
	nicLevel := *levelArg == "nic"
	if !nicLevel && *levelArg != "host" {
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *levelArg)
		os.Exit(2)
	}

	cl := cluster.New(cluster.DefaultConfig(*n))
	rec := trace.NewRecorder(cl.Fabric())
	rec.Disable()
	g := core.UniformGroup(*n, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*(*n)+16)
		if err != nil {
			panic(err)
		}
		for i := 0; i < *skip+*barriers; i++ {
			if rank == 0 && i == *skip {
				rec.Enable()
			}
			var err error
			if nicLevel {
				err = comm.Barrier(p, alg, g, rank, *dim)
			} else {
				err = comm.HostBarrier(p, alg, g, rank, *dim)
			}
			if err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			rec.Disable()
		}
	})
	cl.Run()

	fmt.Printf("trace: %d %s-based %s barriers, %d nodes (after %d warmup)\n\n",
		*barriers, *levelArg, *algArg, *n, *skip)
	fmt.Print(rec.Dump())

	fmt.Println("\nevent counts:")
	counts := rec.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, counts[k])
	}

	lats := rec.WireLatencies()
	if len(lats) > 0 {
		var s stats.Sample
		for _, l := range lats {
			s.Add(l.Latency().Micros())
		}
		fmt.Printf("\nwire latencies (us): %s\n", s.String())
	}
}
