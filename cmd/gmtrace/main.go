// Command gmtrace records and prints a full-stack trace of barrier
// traffic: every injection and delivery on the fabric during a window of
// consecutive barriers, per-packet wire latencies, event counts, and the
// Section 2.2 phase decomposition of the traced window — the simulation
// counterpart of a Myrinet line analyzer with host- and firmware-side
// probes attached.
//
// On multi-switch fabrics (-topo) the trace includes every switch hop, so
// trunk crossings are visible per packet. With -chrome the whole timeline
// is exported as Chrome trace-event JSON for Perfetto (ui.perfetto.dev).
//
// Usage:
//
//	gmtrace [-n nodes] [-alg pe|gb] [-dim D] [-level nic|host]
//	        [-barriers N] [-skip W] [-topo kind] [-radix R] [-chrome out.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
	"gmsim/internal/topo"
	"gmsim/internal/trace"
)

func main() {
	n := flag.Int("n", 4, "cluster size")
	algArg := flag.String("alg", "pe", "barrier algorithm: pe or gb")
	dim := flag.Int("dim", 2, "GB tree dimension")
	levelArg := flag.String("level", "nic", "barrier placement: nic or host")
	barriers := flag.Int("barriers", 2, "barriers to trace")
	skip := flag.Int("skip", 3, "warmup barriers before tracing")
	topoArg := flag.String("topo", "single", "switch topology: single, twoswitch, star, clos2, clos3")
	radix := flag.Int("radix", 0, "switch port count (0 = topology default)")
	chrome := flag.String("chrome", "", "write the trace as Chrome trace-event JSON to this file")
	flag.Parse()

	alg := mcp.PE
	if *algArg == "gb" {
		alg = mcp.GB
	} else if *algArg != "pe" {
		fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", *algArg)
		os.Exit(2)
	}
	nicLevel := *levelArg == "nic"
	if !nicLevel && *levelArg != "host" {
		fmt.Fprintf(os.Stderr, "unknown level %q\n", *levelArg)
		os.Exit(2)
	}

	cfg := cluster.DefaultConfig(*n)
	if *topoArg != "single" {
		kind, err := topo.ParseKind(*topoArg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -topo: %v\n", err)
			os.Exit(2)
		}
		cfg.Topology = &topo.Spec{Kind: kind, Nodes: *n, Radix: *radix}
	} else if *radix > 0 {
		cfg.Switch.Ports = *radix
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cl := cluster.New(cfg)
	rec := trace.Attach(cl)
	rec.Disable()
	g := core.UniformGroup(*n, 2)
	var t0, t1 sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 4*(*n)+16)
		if err != nil {
			panic(err)
		}
		for i := 0; i < *skip+*barriers; i++ {
			if rank == 0 && i == *skip {
				t0 = p.Now()
				rec.Enable()
			}
			var err error
			if nicLevel {
				err = comm.Barrier(p, alg, g, rank, *dim)
			} else {
				err = comm.HostBarrier(p, alg, g, rank, *dim)
			}
			if err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			t1 = p.Now()
			rec.Disable()
		}
	})
	cl.Run()

	fmt.Printf("trace: %d %s-based %s barriers, %d nodes on %s fabric (after %d warmup)\n\n",
		*barriers, *levelArg, *algArg, *n, *topoArg, *skip)
	fmt.Print(rec.Dump())

	fmt.Println("\nevent counts:")
	counts := rec.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-28s %d\n", k, counts[k])
	}

	lats := rec.WireLatencies()
	if len(lats) > 0 {
		var s stats.Sample
		for _, l := range lats {
			s.Add(l.Latency().Micros())
		}
		fmt.Printf("\nwire latencies (us): %s\n", s.String())
	}

	// Switch-hop histogram; on one crossbar every packet takes one hop.
	hopHist := map[int]int{}
	trunk := 0
	for _, ph := range rec.PacketHopCounts() {
		hopHist[ph.Hops]++
		if ph.Hops >= 2 {
			trunk++
		}
	}
	if len(hopHist) > 0 {
		fmt.Println("\nswitch hops per packet:")
		depths := make([]int, 0, len(hopHist))
		for d := range hopHist {
			depths = append(depths, d)
		}
		sort.Ints(depths)
		for _, d := range depths {
			fmt.Printf("  %d hop(s): %d packets\n", d, hopHist[d])
		}
		fmt.Printf("trunk crossings: %d packets traversed 2+ switches\n", trunk)
	}

	fmt.Printf("\nSection 2.2 decomposition of the traced window at rank 0 (%d spans):\n",
		rec.Phases().Len())
	fmt.Print(rec.Decompose(0, t0, t1).Table())

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteChrome(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote Chrome trace to %s (open at ui.perfetto.dev)\n", *chrome)
	}
}
