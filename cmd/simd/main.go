// Command simd is the simulation-as-a-service daemon: the cluster
// simulator behind an HTTP/JSON API with a content-addressed result cache.
//
// Usage:
//
//	simd [-addr :8642] [-cache-mb 256] [-queue 64] [-client-queue 16]
//	     [-workers W] [-retry-after SECS]
//
// Endpoints:
//
//	POST /v1/runs              submit a spec; blocks until the result
//	POST /v1/runs?async=1      submit; returns 202 + job ID immediately
//	GET  /v1/runs/{id}         job status, queue position, result
//	GET  /v1/runs/{id}/trace   Chrome/Perfetto trace JSON of the run
//	GET  /v1/results/{hash}    cached result by content address
//	GET  /v1/scenarios         the 13-cell chaos fleet, as one batch
//	GET  /healthz              liveness + queue/running gauges
//	GET  /metrics              service + accumulated cluster counters
//
// Every simulation is bit-deterministic, so a result is a pure function
// of its canonical spec: the daemon hashes each spec's canonical JSON and
// serves repeats from an LRU cache without re-simulating. Misses run on a
// bounded job queue over the shared worker pool, round-robin across
// client API keys (X-API-Key); a full queue rejects with 429 and a
// Retry-After hint.
//
// SIGTERM or SIGINT drains gracefully: intake stops (503), queued and
// running jobs finish, the listener closes, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"gmsim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB (0 disables caching)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "total queued-job bound")
	clientQueue := flag.Int("client-queue", service.DefaultClientDepth, "per-API-key queued-job bound")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds on 429 rejections")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "maximum graceful-drain wait before exiting nonzero")
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // disabled, not defaulted
	}
	srv := service.NewServer(service.Config{
		CacheBytes:        cacheBytes,
		QueueDepth:        *queue,
		ClientDepth:       *clientQueue,
		Workers:           *workers,
		RetryAfterSeconds: *retryAfter,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("simd: listening on %s (cache %d MiB, queue %d, per-client %d)",
		*addr, *cacheMB, *queue, *clientQueue)

	select {
	case err := <-errc:
		log.Fatalf("simd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("simd: draining")

	// Drain order: stop intake first so queued work is finite, then let
	// in-flight HTTP requests (sync submits included) finish, then wait for
	// the workers to run the queue dry.
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("simd: http shutdown: %v", err)
	}
	if err := srv.WaitDrained(dctx); err != nil {
		log.Fatalf("simd: drain timed out: %v", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	fmt.Println("simd: drained, bye")
}
