// Command simd is the simulation-as-a-service daemon: the cluster
// simulator behind an HTTP/JSON API with a content-addressed result cache
// and crash-safe persistence.
//
// Usage:
//
//	simd [-addr :8642] [-store-dir DIR] [-cache-mb 256] [-queue 64]
//	     [-client-queue 16] [-cost-budget N] [-workers W] [-retry-after SECS]
//	     [-job-deadline DUR] [-read-timeout DUR] [-read-header-timeout DUR]
//	     [-idle-timeout DUR] [-drain-timeout DUR]
//
// Endpoints:
//
//	POST /v1/runs              submit a spec; blocks until the result
//	POST /v1/runs?async=1      submit; returns 202 + job ID immediately
//	GET  /v1/runs/{id}         job status, queue position, result
//	GET  /v1/runs/{id}/trace   Chrome/Perfetto trace JSON of the run
//	GET  /v1/results/{hash}    cached result by content address
//	GET  /v1/deadletter        jobs parked after deadline/panic exhaustion
//	GET  /v1/scenarios         the 13-cell chaos fleet, as one batch
//	GET  /healthz              liveness + queue/running gauges
//	GET  /metrics              service + accumulated cluster counters
//
// Every simulation is bit-deterministic, so a result is a pure function
// of its canonical spec: the daemon hashes each spec's canonical JSON and
// serves repeats from an LRU cache without re-simulating. Misses run on a
// bounded job queue over the shared worker pool, round-robin across
// client API keys (X-API-Key); a full queue — by job count or by summed
// estimated cost — rejects with 429 and a Retry-After hint.
//
// With -store-dir, simd is crash-recoverable: results are persisted
// atomically to a content-addressed store (verified and quarantined-on-
// corruption at read), accepted jobs are journaled before they are
// acknowledged, and on startup the journal is replayed — completed
// results are served from disk without re-simulation and interrupted jobs
// are re-enqueued. A job that outlives its estimated deadline or panics
// repeatedly is parked on /v1/deadletter instead of wedging a worker.
//
// SIGTERM or SIGINT drains gracefully: intake stops (503), queued and
// running jobs finish, the listener closes, and the process exits 0. If
// the drain outlives -drain-timeout, simd exits nonzero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"gmsim/internal/service"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	storeDir := flag.String("store-dir", "", "persistence root (result store + job journal); empty = in-memory only")
	cacheMB := flag.Int64("cache-mb", 256, "result cache budget in MiB (0 disables caching)")
	queue := flag.Int("queue", service.DefaultQueueDepth, "total queued-job bound")
	clientQueue := flag.Int("client-queue", service.DefaultClientDepth, "per-API-key queued-job bound")
	costBudget := flag.Int64("cost-budget", service.DefaultCostBudget, "outstanding estimated-cost bound in engine events (<0 disables)")
	workers := flag.Int("workers", 0, "concurrent simulations (0 = GOMAXPROCS)")
	retryAfter := flag.Int("retry-after", 1, "Retry-After seconds on 429 rejections")
	jobDeadline := flag.Duration("job-deadline", service.DefaultDeadlineBase, "per-job deadline base, plus a size-scaled share (<0 disables)")
	readTimeout := flag.Duration("read-timeout", 2*time.Minute, "http.Server ReadTimeout (full request read)")
	readHeaderTimeout := flag.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris bound)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout (keep-alive connections)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "maximum graceful-drain wait before exiting nonzero")
	flag.Parse()

	cacheBytes := *cacheMB << 20
	if *cacheMB == 0 {
		cacheBytes = -1 // disabled, not defaulted
	}
	srv, err := service.NewServer(service.Config{
		Dir:               *storeDir,
		CacheBytes:        cacheBytes,
		QueueDepth:        *queue,
		ClientDepth:       *clientQueue,
		CostBudget:        *costBudget,
		Workers:           *workers,
		RetryAfterSeconds: *retryAfter,
		DeadlineBase:      *jobDeadline,
	})
	if err != nil {
		log.Fatalf("simd: %v", err)
	}
	// No WriteTimeout: sync submits legitimately hold the response open for
	// the full simulation; the job deadline bounds that instead. The read
	// and idle timeouts keep slow or stalled clients from pinning
	// connections open indefinitely.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHeaderTimeout,
		IdleTimeout:       *idleTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	persist := "in-memory"
	if *storeDir != "" {
		persist = *storeDir
	}
	log.Printf("simd: listening on %s (cache %d MiB, queue %d, per-client %d, store %s)",
		*addr, *cacheMB, *queue, *clientQueue, persist)

	select {
	case err := <-errc:
		log.Fatalf("simd: %v", err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("simd: draining")

	// Drain order: stop intake first so queued work is finite, then let
	// in-flight HTTP requests (sync submits included) finish, then wait for
	// the workers to run the queue dry.
	srv.BeginDrain()
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("simd: http shutdown: %v", err)
	}
	if err := srv.WaitDrained(dctx); err != nil {
		log.Fatalf("simd: drain timed out: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("simd: close: %v", err)
	}
	<-errc // ListenAndServe has returned ErrServerClosed
	fmt.Println("simd: drained, bye")
}
