// Package gmsim's top-level benchmarks regenerate every figure of the
// paper's evaluation (Section 6) plus the ablations called out in
// DESIGN.md. Each benchmark reports simulated microseconds per barrier via
// b.ReportMetric (the quantity the paper plots); wall-clock ns/op measures
// only the simulator itself.
//
// Mapping to the paper:
//
//	BenchmarkFigure5a*  — Figure 5(a): latency vs nodes, LANai 4.3
//	BenchmarkFigure5b*  — Figure 5(b): factor of improvement, LANai 4.3
//	BenchmarkFigure5c*  — Figure 5(c): latency vs nodes, LANai 7.2
//	BenchmarkFigure5d*  — Figure 5(d): factor of improvement, LANai 7.2
//	BenchmarkFigure2Model — Section 2.2 Equations 1-3 vs simulation
//	BenchmarkPingPong   — Section 1's host-based one-way latency claim
//	BenchmarkGBDimensionSweep — Section 6's dimension-sweep methodology
//	BenchmarkLayerOverhead — Equation 3's added-layer prediction
//	BenchmarkAblation*  — design-choice ablations (DESIGN.md)
package gmsim

import (
	"fmt"
	"testing"

	"gmsim/internal/cluster"
	"gmsim/internal/experiments"
	"gmsim/internal/mcp"
	"gmsim/internal/model"
	"gmsim/internal/sim"
)

const benchIters = 40 // timed barriers per simulated measurement

func reportBarrier(b *testing.B, spec experiments.Spec) {
	b.Helper()
	spec.Iters = benchIters
	var mean float64
	for i := 0; i < b.N; i++ {
		mean = experiments.MeasureBarrier(spec).MeanMicros
	}
	b.ReportMetric(mean, "us/barrier")
}

func benchVariants(b *testing.B, mkCfg func(int) cluster.Config, sizes []int) {
	for _, n := range sizes {
		n := n
		cfg := mkCfg(n)
		b.Run(fmt.Sprintf("NIC-PE/nodes=%d", n), func(b *testing.B) {
			reportBarrier(b, experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE})
		})
		b.Run(fmt.Sprintf("Host-PE/nodes=%d", n), func(b *testing.B) {
			reportBarrier(b, experiments.Spec{Cluster: cfg, Level: experiments.HostLevel, Alg: mcp.PE})
		})
		b.Run(fmt.Sprintf("NIC-GB/nodes=%d", n), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				_, lat = experiments.OptimalGBDim(cfg, experiments.NICLevel, benchIters)
			}
			b.ReportMetric(lat, "us/barrier")
		})
		b.Run(fmt.Sprintf("Host-GB/nodes=%d", n), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				_, lat = experiments.OptimalGBDim(cfg, experiments.HostLevel, benchIters)
			}
			b.ReportMetric(lat, "us/barrier")
		})
	}
}

// BenchmarkFigure5aLatency regenerates Figure 5(a): NIC- and host-based
// barrier latency for both algorithms on LANai 4.3 clusters of 2-16 nodes.
func BenchmarkFigure5aLatency(b *testing.B) {
	benchVariants(b, cluster.DefaultConfig, experiments.LANai43Sizes)
}

// BenchmarkFigure5bFactor regenerates Figure 5(b): factor of improvement
// on LANai 4.3 (paper: 1.78 for PE at 16 nodes).
func BenchmarkFigure5bFactor(b *testing.B) {
	for _, n := range experiments.LANai43Sizes {
		n := n
		b.Run(fmt.Sprintf("PE/nodes=%d", n), func(b *testing.B) {
			cfg := cluster.DefaultConfig(n)
			var factor float64
			for i := 0; i < b.N; i++ {
				nic := experiments.MeasureBarrier(experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE, Iters: benchIters}).MeanMicros
				hst := experiments.MeasureBarrier(experiments.Spec{Cluster: cfg, Level: experiments.HostLevel, Alg: mcp.PE, Iters: benchIters}).MeanMicros
				factor = hst / nic
			}
			b.ReportMetric(factor, "factor")
		})
	}
}

// BenchmarkFigure5cLatency regenerates Figure 5(c): latency on LANai 7.2
// clusters of 2-8 nodes (paper: 49.25 µs NIC-PE at 8 nodes).
func BenchmarkFigure5cLatency(b *testing.B) {
	benchVariants(b, cluster.LANai72Config, experiments.LANai72Sizes)
}

// BenchmarkFigure5dFactor regenerates Figure 5(d): factor of improvement on
// LANai 7.2 (paper: 1.83 for PE at 8 nodes).
func BenchmarkFigure5dFactor(b *testing.B) {
	for _, n := range experiments.LANai72Sizes {
		n := n
		b.Run(fmt.Sprintf("PE/nodes=%d", n), func(b *testing.B) {
			cfg := cluster.LANai72Config(n)
			var factor float64
			for i := 0; i < b.N; i++ {
				nic := experiments.MeasureBarrier(experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE, Iters: benchIters}).MeanMicros
				hst := experiments.MeasureBarrier(experiments.Spec{Cluster: cfg, Level: experiments.HostLevel, Alg: mcp.PE, Iters: benchIters}).MeanMicros
				factor = hst / nic
			}
			b.ReportMetric(factor, "factor")
		})
	}
}

// BenchmarkFigure2Model evaluates the Section 2.2 analytical model against
// the simulation, reporting the model's prediction error for the NIC-based
// barrier at 8 nodes.
func BenchmarkFigure2Model(b *testing.B) {
	bd := model.PaperEstimate43()
	cfg := cluster.DefaultConfig(8)
	var errPct float64
	for i := 0; i < b.N; i++ {
		simNIC := experiments.MeasureBarrier(experiments.Spec{
			Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE, Iters: benchIters,
		}).MeanMicros
		pred := bd.NICBarrier(8)
		errPct = (pred - simNIC) / simNIC * 100
	}
	b.ReportMetric(errPct, "model-error-%")
}

// BenchmarkPingPong measures the host-level one-way small-message latency
// (Section 1: "may be as high as 30µs") on both cards.
func BenchmarkPingPong(b *testing.B) {
	for _, tc := range []struct {
		name string
		cfg  cluster.Config
	}{
		{"LANai4.3", cluster.DefaultConfig(2)},
		{"LANai7.2", cluster.LANai72Config(2)},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				lat = experiments.PingPong(tc.cfg, 8, benchIters)
			}
			b.ReportMetric(lat, "us-one-way")
		})
	}
}

// BenchmarkGBDimensionSweep regenerates the Section 6 methodology: the GB
// latency at every tree dimension for a 16-node LANai 4.3 cluster, reporting
// the best/worst spread.
func BenchmarkGBDimensionSweep(b *testing.B) {
	cfg := cluster.DefaultConfig(16)
	var best, worst float64
	for i := 0; i < b.N; i++ {
		pts := experiments.GBDimSweep(cfg, experiments.NICLevel, benchIters)
		best, worst = pts[0].Micros, pts[0].Micros
		for _, p := range pts {
			if p.Micros < best {
				best = p.Micros
			}
			if p.Micros > worst {
				worst = p.Micros
			}
		}
	}
	b.ReportMetric(best, "us-best-dim")
	b.ReportMetric(worst, "us-worst-dim")
}

// BenchmarkLayerOverhead regenerates the Equation-3 prediction (experiment
// E8): the factor of improvement as an MPI-like layer adds per-message host
// overhead.
func BenchmarkLayerOverhead(b *testing.B) {
	for _, oh := range []float64{0, 10, 20, 40} {
		oh := oh
		b.Run(fmt.Sprintf("overhead=%.0fus", oh), func(b *testing.B) {
			var factor float64
			for i := 0; i < b.N; i++ {
				pts := experiments.LayerOverheadSweep(8, []float64{oh}, benchIters)
				factor = pts[0].Factor
			}
			b.ReportMetric(factor, "factor")
		})
	}
}

// BenchmarkAblationReliableBarrier measures the cost of the Section 4.4
// reliable-barrier mechanism on a loss-free network: the price of the
// separate ACK traffic and sequence bookkeeping.
func BenchmarkAblationReliableBarrier(b *testing.B) {
	for _, reliable := range []bool{false, true} {
		reliable := reliable
		name := "unreliable"
		if reliable {
			name = "reliable"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.DefaultConfig(8)
			cfg.ReliableBarrier = reliable
			reportBarrier(b, experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE})
		})
	}
}

// BenchmarkAblationLoopbackFlag measures the Section 3.4 optimization for
// intra-NIC barriers: two ports of one NIC synchronizing via flags instead
// of loopback packets.
func BenchmarkAblationLoopbackFlag(b *testing.B) {
	run := func(b *testing.B, flag bool) {
		var mean float64
		for i := 0; i < b.N; i++ {
			cfg := cluster.DefaultConfig(1)
			cfg.LoopbackFlag = flag
			cl := cluster.New(cfg)
			s := cl.Sim()
			var t0, t1 sim.Time
			done := make([]int, 2)
			post := func(port int) {
				m := cl.MCP(0)
				if err := m.PostBarrierBuffer(port); err != nil {
					b.Fatal(err)
				}
				other := 5 - port // 2 <-> 3
				tok := &mcp.BarrierToken{Alg: mcp.PE, SrcPort: port,
					Peers: []mcp.Endpoint{{Node: 0, Port: other}}}
				if err := m.PostBarrierToken(tok); err != nil {
					b.Fatal(err)
				}
			}
			for _, port := range []int{2, 3} {
				port := port
				if err := cl.MCP(0).OpenPort(port, func(ev mcp.HostEvent) {
					if ev.Kind == mcp.BarrierDoneEvent {
						done[port-2]++
						t1 = s.Now()
					}
				}); err != nil {
					b.Fatal(err)
				}
			}
			const rounds = benchIters
			var kick func(port, left int)
			kick = func(port, left int) {
				if left == 0 {
					return
				}
				post(port)
				want := rounds - left + 1
				var poll func()
				poll = func() {
					if done[port-2] >= want {
						kick(port, left-1)
						return
					}
					s.After(sim.Microsecond, poll)
				}
				s.After(sim.Microsecond, poll)
			}
			t0 = s.Now()
			kick(2, rounds)
			kick(3, rounds)
			s.Run()
			mean = (t1 - t0).Micros() / rounds
		}
		b.ReportMetric(mean, "us/barrier")
	}
	b.Run("packet-loopback", func(b *testing.B) { run(b, false) })
	b.Run("flag-optimized", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationTwoLevelSwitch compares the paper's single-switch
// testbed with a two-switch topology (extra hop on half the routes).
func BenchmarkAblationTwoLevelSwitch(b *testing.B) {
	for _, twoLevel := range []bool{false, true} {
		twoLevel := twoLevel
		name := "single-switch"
		if twoLevel {
			name = "two-level"
		}
		b.Run(name, func(b *testing.B) {
			cfg := cluster.DefaultConfig(16)
			cfg.TwoLevel = twoLevel
			reportBarrier(b, experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE})
		})
	}
}

// BenchmarkCollectives regenerates the Section 8 future-work comparison
// (experiment E10): NIC-based vs host-based broadcast/reduce/allreduce
// one-shot latency at 8 nodes, optimal tree dimension.
func BenchmarkCollectives(b *testing.B) {
	cfg := cluster.DefaultConfig(8)
	for _, tc := range []struct {
		name string
		nic  bool
		op   mcp.CollOp
	}{
		{"NIC-bcast", true, mcp.Broadcast},
		{"Host-bcast", false, mcp.Broadcast},
		{"NIC-reduce", true, mcp.Reduce},
		{"Host-reduce", false, mcp.Reduce},
		{"NIC-allreduce", true, mcp.AllReduce},
		{"Host-allreduce", false, mcp.AllReduce},
	} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				_, lat = experiments.OptimalCollDim(cfg, tc.nic, tc.op, 4, benchIters)
			}
			b.ReportMetric(lat, "us/op")
		})
	}
}

// BenchmarkScaleProjection regenerates experiment E11: the factor of
// improvement beyond the paper's 16-node testbed.
func BenchmarkScaleProjection(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var factor float64
			for i := 0; i < b.N; i++ {
				rows := experiments.ScaleSweep([]int{n}, benchIters)
				factor = rows[0].Factor
			}
			b.ReportMetric(factor, "factor")
		})
	}
}

// BenchmarkMPIBarrier regenerates experiment E8b: MPI_Barrier over the mpi
// layer with each backend — the paper's Equation 3 prediction with a real
// layer (compare the MPI factor against the raw-GM factor).
func BenchmarkMPIBarrier(b *testing.B) {
	for _, n := range []int{8, 16} {
		n := n
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			var row experiments.MPIRow
			for i := 0; i < b.N; i++ {
				row = experiments.MPIBarrierComparison([]int{n}, benchIters)[0]
			}
			b.ReportMetric(row.Factor, "mpi-factor")
			b.ReportMetric(row.RawFactor, "raw-factor")
		})
	}
}

// BenchmarkSimulatorThroughput measures the DES engine itself: simulated
// barrier operations per wall-clock second (not a paper figure; a sanity
// check that the harness is usable at 100k-barrier scale).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := cluster.DefaultConfig(16)
	spec := experiments.Spec{Cluster: cfg, Level: experiments.NICLevel, Alg: mcp.PE, Iters: benchIters}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.MeasureBarrier(spec)
	}
	barriers := float64(b.N) * float64(benchIters+5)
	b.ReportMetric(barriers/b.Elapsed().Seconds(), "barriers/sec")
}
