// Quickstart: build a simulated 8-node Myrinet/GM cluster with LANai 4.3
// NICs, run a few NIC-based pairwise-exchange barriers, and print what they
// cost — the shortest path through the public API.
package main

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

func main() {
	const (
		nodes    = 8
		port     = 2 // GM reserves low port numbers; 2 is the first user port
		barriers = 5
	)

	// A cluster is N nodes — each a host processor plus a LANai NIC
	// running the MCP firmware — cabled to one Myrinet switch.
	cl := cluster.New(cluster.DefaultConfig(nodes))

	// The barrier group: one process per node, all on the same port.
	group := core.UniformGroup(nodes, port)

	// Per-rank exit times of the last barrier, for the report.
	exits := make([]sim.Time, nodes)

	// SpawnAll starts one process per node. Everything inside the body
	// runs in simulated time.
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()

		// Open a GM port on this node's NIC and wrap it in a Comm,
		// which manages receive buffers and early-arriving messages.
		gmPort, err := gm.Open(p, cl.MCP(rank), port)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, gmPort, 32)
		if err != nil {
			panic(err)
		}

		// Stagger the ranks a little so the barrier has real work to do.
		p.Compute(sim.Time(rank) * 3 * sim.Microsecond)

		for i := 0; i < barriers; i++ {
			t0 := p.Now()
			// One NIC-based barrier: the host hands the peer list to the
			// NIC (gm_barrier_send_with_callback) and waits for
			// GM_BARRIER_COMPLETED_EVENT. All intermediate messages stay
			// on the NICs.
			if err := comm.Barrier(p, mcp.PE, group, rank, 0); err != nil {
				panic(err)
			}
			if rank == 0 {
				fmt.Printf("barrier %d: rank 0 entered at %8.2fus, left at %8.2fus (%.2fus)\n",
					i, t0.Micros(), p.Now().Micros(), (p.Now() - t0).Micros())
			}
		}
		exits[rank] = p.Now()
	})

	cl.Run() // drive the simulation to completion

	fmt.Println()
	for rank, at := range exits {
		fmt.Printf("rank %d finished at %8.2fus\n", rank, at.Micros())
	}
	st := cl.MCP(0).Stats()
	fmt.Printf("\nnode 0 firmware: %d barrier packets sent, %d received, %d barriers completed\n",
		st.BarrierSent, st.BarrierRecvd, st.BarrierCompleted)
}
