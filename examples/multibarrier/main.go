// Multiple concurrent barriers (Section 3.4): GM allows up to eight ports
// per NIC, and "if a NIC can be used by more than one process, then the
// NIC-based barrier mechanism must be designed to allow multiple processes
// to initiate barrier operations concurrently".
//
// This example runs two independent process groups — one on port 2, one on
// port 3 — across the same four NICs. Each group barriers at its own rhythm;
// the per-port barrier send-token pointers keep the NIC-resident state
// separate, and the unexpected-message record is indexed by source port.
package main

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

const (
	nodes    = 4
	barriers = 6
)

func main() {
	cl := cluster.New(cluster.DefaultConfig(nodes))

	type result struct {
		group, barrier int
		rank           int
		at             sim.Time
	}
	var results []result

	// Group A on port 2 barriers quickly; group B on port 3 computes
	// longer between barriers. They share every NIC.
	groups := []struct {
		port    int
		compute sim.Time
		alg     mcp.BarrierAlg
	}{
		{port: 2, compute: 10 * sim.Microsecond, alg: mcp.PE},
		{port: 3, compute: 60 * sim.Microsecond, alg: mcp.GB},
	}

	for gi, spec := range groups {
		gi, spec := gi, spec
		group := core.UniformGroup(nodes, spec.port)
		for node := 0; node < nodes; node++ {
			node := node
			cl.Spawn(node, node, func(p *host.Process) {
				gmPort, err := gm.Open(p, cl.MCP(node), spec.port)
				if err != nil {
					panic(err)
				}
				comm, err := core.NewComm(p, gmPort, 32)
				if err != nil {
					panic(err)
				}
				for b := 0; b < barriers; b++ {
					p.Compute(spec.compute)
					var err error
					if spec.alg == mcp.PE {
						err = comm.Barrier(p, mcp.PE, group, node, 0)
					} else {
						err = comm.Barrier(p, mcp.GB, group, node, 2)
					}
					if err != nil {
						panic(err)
					}
					if node == 0 {
						results = append(results, result{gi, b, node, p.Now()})
					}
				}
			})
		}
	}
	cl.Run()

	fmt.Printf("two groups × %d barriers over the same %d NICs (group 0: PE on port 2; group 1: GB on port 3)\n\n",
		barriers, nodes)
	for _, r := range results {
		fmt.Printf("group %d barrier %d completed at %8.2fus\n", r.group, r.barrier, r.at.Micros())
	}

	// Show that the NIC really multiplexed both groups.
	st := cl.MCP(0).Stats()
	fmt.Printf("\nnode 0 firmware totals: %d barrier packets sent, %d barriers completed (both ports)\n",
		st.BarrierSent, st.BarrierCompleted)
}
