// Stencil: the paper's motivation made concrete. "If the barrier latency is
// high, then the granularity must also be high. With a lower latency
// barrier operation finer-grained computation can be supported" (Section 1).
//
// This example runs a BSP-style 1-D Jacobi stencil across 8 nodes: each
// iteration is halo exchange (GM data messages) + local compute + barrier.
// It sweeps the per-iteration compute grain and reports, for host-based and
// NIC-based barriers, the parallel efficiency — showing where each variant
// stops being profitable.
package main

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
	"gmsim/internal/stats"
)

const (
	nodes      = 8
	port       = 2
	iterations = 30
	haloBytes  = 64
)

// runStencil returns the total runtime with the given per-iteration compute
// grain, using NIC-based barriers when nicBarrier is set.
func runStencil(grain sim.Time, nicBarrier bool) sim.Time {
	cl := cluster.New(cluster.DefaultConfig(nodes))
	group := core.UniformGroup(nodes, port)
	var finish sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		gmPort, err := gm.Open(p, cl.MCP(rank), port)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, gmPort, 64)
		if err != nil {
			panic(err)
		}
		left, right := rank-1, rank+1
		halo := make([]byte, haloBytes)
		for it := 0; it < iterations; it++ {
			// Halo exchange with the neighbors.
			if left >= 0 {
				if err := comm.Send(p, group[left], halo); err != nil {
					panic(err)
				}
			}
			if right < nodes {
				if err := comm.Send(p, group[right], halo); err != nil {
					panic(err)
				}
			}
			if left >= 0 {
				if _, err := comm.RecvFrom(p, group[left]); err != nil {
					panic(err)
				}
			}
			if right < nodes {
				if _, err := comm.RecvFrom(p, group[right]); err != nil {
					panic(err)
				}
			}
			// Local relaxation.
			p.Compute(grain)
			// Iteration barrier.
			if nicBarrier {
				err = comm.Barrier(p, mcp.PE, group, rank, 0)
			} else {
				err = comm.HostBarrierPE(p, group, rank)
			}
			if err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			finish = p.Now()
		}
	})
	cl.Run()
	return finish
}

func main() {
	fmt.Printf("1-D Jacobi stencil, %d nodes, %d iterations, halo %dB, LANai 4.3\n", nodes, iterations, haloBytes)
	fmt.Println("efficiency = compute time / total time (higher is better; small grains need fast barriers)")
	fmt.Println()
	tbl := stats.NewTable("", "Grain (us/iter)", "Host barrier (us)", "NIC barrier (us)",
		"Host efficiency", "NIC efficiency", "NIC speedup")
	for _, grainUS := range []float64{10, 25, 50, 100, 250, 500, 1000} {
		grain := sim.FromMicros(grainUS)
		hostT := runStencil(grain, false)
		nicT := runStencil(grain, true)
		compute := float64(iterations) * grainUS
		tbl.AddRow(grainUS, hostT.Micros(), nicT.Micros(),
			compute/hostT.Micros(), compute/nicT.Micros(),
			hostT.Micros()/nicT.Micros())
	}
	fmt.Print(tbl.String())
	fmt.Println("\nThe NIC-based barrier keeps efficiency acceptable at grains where the")
	fmt.Println("host-based barrier already dominates the iteration — the paper's point")
	fmt.Println("that NIC-level barriers enable finer-grained parallel computation.")
}
