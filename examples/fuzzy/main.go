// Fuzzy barrier: because the paper separates barrier initiation
// (gm_barrier_send_with_callback) from completion polling (gm_receive),
// the host can compute while the NIC runs the barrier (Gupta's "fuzzy
// barrier", Sections 1 and 5.2).
//
// This example runs the same computation+barrier workload twice — once
// serially (barrier, then compute) and once fuzzily (start barrier,
// compute while polling, then wait) — and reports the overlap won.
package main

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/sim"
)

const (
	nodes      = 8
	port       = 2
	iterations = 20
	chunk      = 4 * sim.Microsecond // one slice of overlappable work
	chunks     = 16                  // per iteration
)

func run(fuzzy bool) sim.Time {
	cl := cluster.New(cluster.DefaultConfig(nodes))
	group := core.UniformGroup(nodes, port)
	var finish sim.Time
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		gmPort, err := gm.Open(p, cl.MCP(rank), port)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, gmPort, 32)
		if err != nil {
			panic(err)
		}
		for i := 0; i < iterations; i++ {
			if fuzzy {
				// Initiate the barrier, then compute while the NIC works.
				pb, err := comm.StartBarrier(p, mcp.PE, group, rank, 0)
				if err != nil {
					panic(err)
				}
				for c := 0; c < chunks; c++ {
					p.Compute(chunk)
					pb.Test(p) // cheap completion poll between chunks
				}
				pb.Wait(p)
			} else {
				// Conventional: synchronize first, then compute.
				if err := comm.Barrier(p, mcp.PE, group, rank, 0); err != nil {
					panic(err)
				}
				for c := 0; c < chunks; c++ {
					p.Compute(chunk)
				}
			}
		}
		if rank == 0 {
			finish = p.Now()
		}
	})
	cl.Run()
	return finish
}

func main() {
	serial := run(false)
	fuzzy := run(true)
	fmt.Printf("%d iterations of (%dx%v compute + 8-node NIC barrier):\n\n",
		iterations, chunks, chunk)
	fmt.Printf("  serial barrier-then-compute: %8.2fus total\n", serial.Micros())
	fmt.Printf("  fuzzy  compute-while-barrier:%8.2fus total\n", fuzzy.Micros())
	fmt.Printf("\noverlap recovered %.2fus (%.1f%%) — computation hidden inside barrier latency\n",
		(serial - fuzzy).Micros(), 100*float64(serial-fuzzy)/float64(serial))
}
