// MPI layer example: a distributed dot-product solver written against the
// mpi package, run twice — once with stock host-backed MPI_Barrier /
// collectives (MPICH-over-GM style) and once with the paper's NIC-backed
// operations plugged in underneath. The application code is identical;
// only the layer configuration changes, which is exactly how the paper
// envisioned the NIC-based barrier being deployed ("we expect that our
// NIC-based barrier would show an even greater improvement over host-based
// barrier with these layers").
package main

import (
	"fmt"

	"gmsim/internal/cluster"
	"gmsim/internal/core"
	"gmsim/internal/gm"
	"gmsim/internal/host"
	"gmsim/internal/mcp"
	"gmsim/internal/mpi"
	"gmsim/internal/sim"
)

const (
	nodes      = 8
	iterations = 25
	vectorLen  = 1 << 14 // elements per rank
	flopCost   = 2       // ns of host time per element per iteration
)

// run executes the solver: each iteration does local work, an Allreduce of
// the partial dot products, and a Barrier before the next step.
func run(cfg mpi.Config) (result int64, elapsed sim.Time) {
	cl := cluster.New(cluster.DefaultConfig(nodes))
	g := core.UniformGroup(nodes, 2)
	cl.SpawnAll(func(p *host.Process) {
		rank := p.Rank()
		port, err := gm.Open(p, cl.MCP(rank), 2)
		if err != nil {
			panic(err)
		}
		comm, err := core.NewComm(p, port, 64)
		if err != nil {
			panic(err)
		}
		w, err := mpi.NewWorld(comm, g, rank, cfg)
		if err != nil {
			panic(err)
		}
		var acc int64
		for it := 0; it < iterations; it++ {
			// Local partial dot product (modeled host compute).
			p.Compute(sim.Time(vectorLen * flopCost))
			partial := int64(rank+1) * int64(it+1)
			// Global sum.
			sum, err := w.Allreduce(p, mcp.OpSum, []int64{partial})
			if err != nil {
				panic(err)
			}
			acc += sum[0]
			// Synchronize before mutating shared structures.
			if err := w.Barrier(p); err != nil {
				panic(err)
			}
		}
		if rank == 0 {
			result = acc
			elapsed = p.Now()
		}
	})
	cl.Run()
	return result, elapsed
}

func main() {
	stock := mpi.DefaultConfig() // host-backed barrier + collectives

	nicCfg := mpi.DefaultConfig()
	nicCfg.UseNICBarrier = true
	nicCfg.UseNICCollectives = true

	r1, t1 := run(stock)
	r2, t2 := run(nicCfg)

	fmt.Printf("distributed solver: %d ranks, %d iterations of compute + Allreduce + Barrier\n\n", nodes, iterations)
	fmt.Printf("  stock MPI (host-backed):   result=%d  %10.2fus\n", r1, t1.Micros())
	fmt.Printf("  NIC-backed MPI:            result=%d  %10.2fus\n", r2, t2.Micros())
	if r1 != r2 {
		fmt.Println("\nERROR: results differ!")
		return
	}
	fmt.Printf("\nidentical results, %.1f%% faster end-to-end with NIC-based collectives —\n",
		100*float64(t1-t2)/float64(t1))
	fmt.Println("the synchronization cost removed from every iteration's critical path.")
}
