#!/bin/sh
# simd end-to-end smoke: build the simulation service, boot it, post the
# paper's headline experiment (16-node NIC-PE, Figure 5), pin its latency,
# prove the repeat is a cache hit, and check graceful SIGTERM drain.
#
# Everything asserted here is bit-deterministic: the mean is matched as an
# exact string, not a tolerance.
set -eu

ADDR="${SIMD_ADDR:-127.0.0.1:8643}"
URL="http://$ADDR"
# The simulated 16-node NIC-PE mean (us), warmup 5, iters 200 — the
# Figure 5 headline cell (paper measured 102.14us on real hardware; the
# calibration test pins the 5% agreement).
WANT_MEAN='"mean_us":101.133'
# Content address of the canonical spec — must match
# internal/service/testdata/figure5_16node.hash.
WANT_HASH='056277034391146d77e174f33927e4120ee09cb130e07bf93ee49aa139c04ad5'

workdir="$(mktemp -d)"
simd_pid=""
cleanup() {
    [ -n "$simd_pid" ] && kill "$simd_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- simd log ---" >&2
    cat "$workdir/simd.log" >&2 || true
    exit 1
}

echo "== build"
go build -o "$workdir/simd" ./cmd/simd

echo "== boot on $ADDR"
"$workdir/simd" -addr "$ADDR" >"$workdir/simd.log" 2>&1 &
simd_pid=$!
for i in $(seq 1 50); do
    if curl -sf "$URL/healthz" >/dev/null 2>&1; then break; fi
    [ "$i" = 50 ] && fail "simd never became healthy"
    sleep 0.2
done

echo "== cold run: 16-node NIC-PE (Figure 5 headline)"
curl -sf -D "$workdir/h1" -X POST "$URL/v1/runs" -d '{"nodes":16}' >"$workdir/r1" \
    || fail "cold POST failed"
grep -q "$WANT_MEAN" "$workdir/r1" \
    || fail "cold run mean mismatch; want $WANT_MEAN in: $(cat "$workdir/r1")"
grep -q "\"hash\":\"$WANT_HASH\"" "$workdir/r1" \
    || fail "spec hash mismatch; want $WANT_HASH in: $(cat "$workdir/r1")"
grep -qi '^x-cache: miss' "$workdir/h1" || fail "cold run was not a cache miss"

echo "== warm run: must be a cache hit, byte-identical, no re-simulation"
curl -sf -D "$workdir/h2" -X POST "$URL/v1/runs" -d '{"nodes":16,"topo":"single","alg":"PE"}' >"$workdir/r2" \
    || fail "warm POST failed"
grep -qi '^x-cache: hit' "$workdir/h2" || fail "warm run was not a cache hit"
cmp -s "$workdir/r1" "$workdir/r2" || fail "warm body differs from cold body"
curl -sf "$URL/metrics" >"$workdir/metrics" || fail "metrics fetch failed"
grep -Eq '^service\.runs +1$' "$workdir/metrics" \
    || fail "expected exactly 1 simulation; metrics: $(grep '^service\.' "$workdir/metrics")"
grep -Eq '^service\.cache_hits +1$' "$workdir/metrics" \
    || fail "expected exactly 1 cache hit; metrics: $(grep '^service\.' "$workdir/metrics")"

echo "== trace endpoint"
curl -sf "$URL/v1/results/$WANT_HASH/trace" | head -c 64 | grep -q 'traceEvents' \
    || fail "trace endpoint did not serve Chrome JSON"

echo "== SIGTERM drain"
kill -TERM "$simd_pid"
i=0
while kill -0 "$simd_pid" 2>/dev/null; do
    i=$((i + 1))
    [ "$i" = 100 ] && fail "simd did not exit within 20s of SIGTERM"
    sleep 0.2
done
# $! was backgrounded by this shell, so wait recovers its exit status.
set +e
wait "$simd_pid"
status=$?
set -e
simd_pid=""
[ "$status" = 0 ] || fail "simd exited $status after SIGTERM"
grep -q 'drained, bye' "$workdir/simd.log" || fail "no clean-drain message in log"

echo "PASS: simd smoke"
