#!/bin/sh
# simd restart-chaos smoke: prove the daemon is crash-recoverable.
#
# Life 1 boots simd with persistence, completes the Figure 5 headline run,
# starts a slow job, and kills the daemon with SIGKILL mid-simulation.
# Life 2 restarts on the same state directory and must serve the completed
# result from disk byte-identical with zero re-simulation
# (service.cache.disk_hits > 0), replay the interrupted job under its
# original ID, and finish it. Life 3 flips a byte in the stored entry and
# must quarantine + transparently re-simulate. A final boot pins the
# drain-timeout-exceeded path: a SIGTERM that cannot drain in time exits
# nonzero.
#
# Every asserted body is bit-deterministic, so "recovered" means
# byte-identical, not merely plausible.
set -eu

ADDR="${SIMD_ADDR:-127.0.0.1:8653}"
URL="http://$ADDR"
# Figure 5 headline cell: 16-node NIC-PE, warmup 5, iters 200.
WANT_MEAN='"mean_us":101.133'
WANT_HASH='056277034391146d77e174f33927e4120ee09cb130e07bf93ee49aa139c04ad5'
# The interrupted job: big enough (~5s) that SIGKILL lands mid-simulation.
SLOW_SPEC='{"nodes":64,"iters":500}'

workdir="$(mktemp -d)"
state="$workdir/state"
simd_pid=""
cleanup() {
    [ -n "$simd_pid" ] && kill -9 "$simd_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    echo "--- simd log ---" >&2
    cat "$workdir/simd.log" >&2 || true
    exit 1
}

# boot <extra flags...>: start simd on $ADDR logging to $workdir/simd.log
# and wait for /healthz.
boot() {
    "$workdir/simd" -addr "$ADDR" "$@" >"$workdir/simd.log" 2>&1 &
    simd_pid=$!
    for i in $(seq 1 50); do
        if curl -sf "$URL/healthz" >/dev/null 2>&1; then return 0; fi
        [ "$i" = 50 ] && fail "simd never became healthy"
        sleep 0.2
    done
}

# sigterm_wait: SIGTERM the daemon and return its exit status in $status.
sigterm_wait() {
    kill -TERM "$simd_pid"
    i=0
    while kill -0 "$simd_pid" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" = 300 ] && fail "simd did not exit within 60s of SIGTERM"
        sleep 0.2
    done
    set +e
    wait "$simd_pid"
    status=$?
    set -e
    simd_pid=""
}

# wait_job <id> <status-substr>: poll GET /v1/runs/<id> until the status
# field matches.
wait_job() {
    for i in $(seq 1 300); do
        curl -sf "$URL/v1/runs/$1" >"$workdir/job" 2>/dev/null || true
        if grep -q "\"status\":\"$2\"" "$workdir/job"; then return 0; fi
        sleep 0.2
    done
    fail "job $1 never reached $2; last status: $(cat "$workdir/job")"
}

# metric <name>: print the metric's value from /metrics.
metric() {
    curl -sf "$URL/metrics" | awk -v n="$1" '$1 == n { print $2 }'
}

echo "== build"
go build -o "$workdir/simd" ./cmd/simd

echo "== life 1: persist a result, then SIGKILL mid-simulation"
boot -store-dir "$state" -workers 1
cold_s="$(curl -sf -w '%{time_total}' -D "$workdir/h1" -o "$workdir/r1" \
    -X POST "$URL/v1/runs" -d '{"nodes":16}')" || fail "cold POST failed"
grep -q "$WANT_MEAN" "$workdir/r1" || fail "cold mean mismatch: $(cat "$workdir/r1")"
grep -qi '^x-cache: miss' "$workdir/h1" || fail "cold run was not a cache miss"
[ -f "$state/store/${WANT_HASH%"${WANT_HASH#??}"}/$WANT_HASH" ] \
    || fail "no store entry at the content-addressed path after the cold run"

curl -sf -X POST "$URL/v1/runs?async=1" -d "$SLOW_SPEC" >"$workdir/accept" \
    || fail "async POST failed"
slow_id="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/accept")"
slow_hash="$(sed -n 's/.*"hash":"\([^"]*\)".*/\1/p' "$workdir/accept")"
[ -n "$slow_id" ] && [ -n "$slow_hash" ] || fail "async accept unparsable: $(cat "$workdir/accept")"
wait_job "$slow_id" running
kill -9 "$simd_pid"
wait "$simd_pid" 2>/dev/null || true
simd_pid=""
[ -s "$state/journal.jsonl" ] || fail "journal empty after SIGKILL — nothing to replay"

echo "== life 2: restart, serve from disk, replay the interrupted job"
boot -store-dir "$state" -workers 1
[ "$(metric service.journal.replayed)" = 1 ] \
    || fail "journal.replayed = $(metric service.journal.replayed), want 1"
# The interrupted job keeps its pre-crash ID and completes after replay.
wait_job "$slow_id" done
runs_before="$(metric service.runs)"
[ "$runs_before" = 1 ] || fail "service.runs = $runs_before after replay, want 1 (the replayed job only)"

disk_s="$(curl -sf -w '%{time_total}' -D "$workdir/h2" -o "$workdir/r2" \
    -X POST "$URL/v1/runs" -d '{"nodes":16}')" || fail "warm-from-disk POST failed"
grep -qi '^x-cache: hit' "$workdir/h2" || fail "post-restart run was not a cache hit"
cmp -s "$workdir/r1" "$workdir/r2" || fail "post-restart body differs from pre-crash body"
[ "$(metric service.cache.disk_hits)" -ge 1 ] \
    || fail "cache.disk_hits = $(metric service.cache.disk_hits), want >= 1"
[ "$(metric service.runs)" = "$runs_before" ] \
    || fail "restart re-simulated a stored result (runs $runs_before -> $(metric service.runs))"

# The replayed job's result is served by content address, byte-identical to
# a fresh submit of the same spec (which must be a pure cache hit).
curl -sf "$URL/v1/results/$slow_hash" >"$workdir/slow1" || fail "replayed result missing by hash"
curl -sf -D "$workdir/h3" -X POST "$URL/v1/runs" -d "$SLOW_SPEC" >"$workdir/slow2" \
    || fail "slow re-POST failed"
grep -qi '^x-cache: hit' "$workdir/h3" || fail "replayed job's spec re-simulated"
cmp -s "$workdir/slow1" "$workdir/slow2" || fail "replayed result not byte-identical"

ram_s="$(curl -sf -w '%{time_total}' -o /dev/null -X POST "$URL/v1/runs" -d '{"nodes":16}')" \
    || fail "warm-from-RAM POST failed"
sigterm_wait
[ "$status" = 0 ] || fail "clean drain exited $status"

echo "== life 3: corrupt the stored entry; quarantine + re-simulate"
entry="$state/store/${WANT_HASH%"${WANT_HASH#??}"}/$WANT_HASH"
[ -f "$entry" ] || fail "store entry vanished across clean restarts"
# Zero one payload byte (offset 200 is well past the ~100-byte header; the
# JSON payload contains no NUL, so this always changes the file).
dd if=/dev/zero of="$entry" bs=1 count=1 seek=200 conv=notrunc 2>/dev/null
boot -store-dir "$state" -workers 1
curl -sf -D "$workdir/h4" -o "$workdir/r4" -X POST "$URL/v1/runs" -d '{"nodes":16}' \
    || fail "post-corruption POST failed"
grep -qi '^x-cache: miss' "$workdir/h4" || fail "corrupt entry served as a hit"
cmp -s "$workdir/r1" "$workdir/r4" || fail "re-simulated body differs from the original"
[ "$(metric service.store.quarantined)" = 1 ] \
    || fail "store.quarantined = $(metric service.store.quarantined), want 1"
qcount="$(ls "$state/store/quarantine" | wc -l)"
[ "$qcount" -ge 1 ] || fail "no quarantined file kept for postmortem"
[ -f "$entry" ] || fail "re-simulation did not heal the store slot"
sigterm_wait
[ "$status" = 0 ] || fail "clean drain exited $status"

echo "== drain-timeout exceeded must exit nonzero"
boot -store-dir "$workdir/state2" -workers 1 -drain-timeout 1s
curl -sf -X POST "$URL/v1/runs?async=1" -d "$SLOW_SPEC" >"$workdir/accept2" \
    || fail "async POST failed"
slow2_id="$(sed -n 's/.*"id":"\([^"]*\)".*/\1/p' "$workdir/accept2")"
wait_job "$slow2_id" running
sigterm_wait
[ "$status" != 0 ] || fail "drain-timeout overrun exited 0"
grep -q 'drain timed out' "$workdir/simd.log" || fail "no drain-timeout message in log"

echo "latency: cold ${cold_s}s, warm-from-disk ${disk_s}s, warm-from-RAM ${ram_s}s"
echo "PASS: simd restart smoke"
